//! Centralized B-Neck (Figure 1 of the paper).
//!
//! The algorithm discovers bottleneck links iteratively, in increasing order
//! of their bottleneck rates. For every link it maintains the set `R_e` of
//! sessions restricted at the link and `F_e` of sessions restricted elsewhere,
//! computes the estimate `B_e = (C_e − Σ_{s∈F_e} λ*_s) / |R_e|`, assigns the
//! minimum estimate to all sessions of the corresponding links, and removes
//! those links from consideration.
//!
//! Maximum rate requests are modelled, as in the paper, by an additional
//! per-session constraint with capacity `r_s` (equivalently, the effective
//! bandwidth `D_s = min(C_e, r_s)` of the first link).

use crate::rate::{Rate, Tolerance};
use crate::session::{Allocation, SessionId, SessionSet};
use bneck_net::{LinkId, Network};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The bottleneck structure of one link in the max-min fair allocation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct LinkBottleneck {
    /// The link this entry describes.
    pub link: LinkId,
    /// The sessions restricted at this link (`R*_e`).
    pub restricted: Vec<SessionId>,
    /// The sessions crossing this link but restricted elsewhere (`F*_e`).
    pub unrestricted: Vec<SessionId>,
    /// The bottleneck rate `B*_e`; `None` when no session is restricted at
    /// this link (in which case its bandwidth is not fully assigned).
    pub bottleneck_rate: Option<Rate>,
}

impl LinkBottleneck {
    /// `true` if this link is a bottleneck of the system (some session is
    /// restricted at it).
    pub fn is_bottleneck(&self) -> bool {
        self.bottleneck_rate.is_some()
    }
}

/// Result of a centralized B-Neck computation: the allocation plus the
/// per-link bottleneck structure.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct CentralizedSolution {
    /// The max-min fair rate of every session.
    pub allocation: Allocation,
    /// Per-link bottleneck sets, for every link crossed by at least one
    /// session.
    pub links: Vec<LinkBottleneck>,
}

impl CentralizedSolution {
    /// The bottleneck entry of `link`, if the link carries any session.
    pub fn link(&self, link: LinkId) -> Option<&LinkBottleneck> {
        self.links.iter().find(|l| l.link == link)
    }

    /// Iterates over the links that are bottlenecks of the system.
    pub fn bottleneck_links(&self) -> impl Iterator<Item = &LinkBottleneck> {
        self.links.iter().filter(|l| l.is_bottleneck())
    }
}

/// Internal constraint: a capacity shared by a set of sessions. Real links map
/// one-to-one to constraints; finite rate limits add a per-session constraint.
#[derive(Debug, Clone)]
struct Constraint {
    link: Option<LinkId>,
    capacity: Rate,
    restricted: BTreeSet<SessionId>,
    unrestricted: BTreeSet<SessionId>,
}

/// The Centralized B-Neck solver (Figure 1).
///
/// # Example
///
/// ```
/// use bneck_net::prelude::*;
/// use bneck_maxmin::prelude::*;
///
/// let net = synthetic::dumbbell(2, Capacity::from_mbps(100.0),
///                               Capacity::from_mbps(50.0), Delay::from_micros(1));
/// let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
/// let mut router = Router::new(&net);
/// let mut sessions = SessionSet::new();
/// for i in 0..2 {
///     let path = router.shortest_path(hosts[2 * i], hosts[2 * i + 1]).unwrap();
///     sessions.insert(Session::new(SessionId(i as u64), path, RateLimit::unlimited()));
/// }
/// let solution = CentralizedBneck::new(&net, &sessions).solve_with_bottlenecks();
/// assert_eq!(solution.bottleneck_links().count(), 1);
/// assert!((solution.allocation.rate(SessionId(0)).unwrap() - 25e6).abs() < 1.0);
/// ```
#[derive(Debug)]
pub struct CentralizedBneck<'a> {
    network: &'a Network,
    sessions: &'a SessionSet,
    tolerance: Tolerance,
}

impl<'a> CentralizedBneck<'a> {
    /// Creates a solver for the given network and session set.
    pub fn new(network: &'a Network, sessions: &'a SessionSet) -> Self {
        CentralizedBneck {
            network,
            sessions,
            tolerance: Tolerance::default(),
        }
    }

    /// Overrides the comparison tolerance.
    pub fn with_tolerance(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Computes the max-min fair allocation.
    pub fn solve(&self) -> Allocation {
        self.solve_with_bottlenecks().allocation
    }

    /// Computes the allocation together with each link's bottleneck sets.
    pub fn solve_with_bottlenecks(&self) -> CentralizedSolution {
        let tol = self.tolerance;
        let mut rates: BTreeMap<SessionId, Rate> = BTreeMap::new();

        // Build the constraints: one per used link, one per finite limit.
        let mut constraints: Vec<Constraint> = Vec::new();
        let mut link_constraint: HashMap<LinkId, usize> = HashMap::new();
        for link in self.sessions.used_links() {
            let crossing: BTreeSet<SessionId> = self
                .sessions
                .sessions_on_link(link)
                .iter()
                .copied()
                .collect();
            link_constraint.insert(link, constraints.len());
            constraints.push(Constraint {
                link: Some(link),
                capacity: self.network.link(link).capacity().as_bps(),
                restricted: crossing,
                unrestricted: BTreeSet::new(),
            });
        }
        for session in self.sessions.iter() {
            if !session.limit().is_unlimited() {
                constraints.push(Constraint {
                    link: None,
                    capacity: session.limit().as_bps(),
                    restricted: [session.id()].into_iter().collect(),
                    unrestricted: BTreeSet::new(),
                });
            }
        }

        // L ← {e ∈ E : R_e ≠ ∅}
        let mut live: BTreeSet<usize> = (0..constraints.len())
            .filter(|i| !constraints[*i].restricted.is_empty())
            .collect();

        while !live.is_empty() {
            // B_e ← (C_e − Σ_{s∈F_e} λ*_s) / |R_e| for each live constraint.
            let mut estimates: BTreeMap<usize, Rate> = BTreeMap::new();
            for &i in &live {
                let c = &constraints[i];
                let assigned: Rate = c
                    .unrestricted
                    .iter()
                    .map(|s| rates.get(s).copied().unwrap_or(0.0))
                    .sum();
                let estimate = (c.capacity - assigned).max(0.0) / c.restricted.len() as f64;
                estimates.insert(i, estimate);
            }
            // B ← min; L' ← argmin; X ← union of R_e over L'.
            let min_estimate = estimates.values().copied().fold(f64::INFINITY, f64::min);
            let argmin: BTreeSet<usize> = estimates
                .iter()
                .filter(|(_, b)| tol.eq(**b, min_estimate))
                .map(|(i, _)| *i)
                .collect();
            let newly_assigned: BTreeSet<SessionId> = argmin
                .iter()
                .flat_map(|i| constraints[*i].restricted.iter().copied())
                .collect();
            for s in &newly_assigned {
                rates.insert(*s, min_estimate);
            }
            // Move the newly assigned sessions to F_e on every other live
            // constraint, and drop constraints that became empty or were just
            // identified as bottlenecks.
            let remaining: BTreeSet<usize> = live.difference(&argmin).copied().collect();
            for &i in &remaining {
                let c = &mut constraints[i];
                let moved: Vec<SessionId> = c
                    .restricted
                    .intersection(&newly_assigned)
                    .copied()
                    .collect();
                for s in moved {
                    c.restricted.remove(&s);
                    c.unrestricted.insert(s);
                }
            }
            live = remaining
                .into_iter()
                .filter(|i| !constraints[*i].restricted.is_empty())
                .collect();
        }

        let mut allocation = Allocation::new();
        for (s, r) in &rates {
            allocation.set(*s, *r);
        }

        // Report the per-link bottleneck structure (only for real links).
        let links = constraints
            .iter()
            .filter_map(|c| {
                let link = c.link?;
                let bottleneck_rate = if c.restricted.is_empty() {
                    None
                } else {
                    let assigned: Rate = c
                        .unrestricted
                        .iter()
                        .map(|s| rates.get(s).copied().unwrap_or(0.0))
                        .sum();
                    Some((c.capacity - assigned).max(0.0) / c.restricted.len() as f64)
                };
                Some(LinkBottleneck {
                    link,
                    restricted: c.restricted.iter().copied().collect(),
                    unrestricted: c.unrestricted.iter().copied().collect(),
                    bottleneck_rate,
                })
            })
            .collect();

        CentralizedSolution { allocation, links }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::RateLimit;
    use crate::session::Session;
    use crate::waterfill::WaterFilling;
    use bneck_net::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn mbps(x: f64) -> Capacity {
        Capacity::from_mbps(x)
    }
    fn us(x: u64) -> Delay {
        Delay::from_micros(x)
    }

    fn dumbbell_sessions(pairs: usize, bottleneck_mbps: f64) -> (Network, SessionSet) {
        let net = synthetic::dumbbell(pairs, mbps(100.0), mbps(bottleneck_mbps), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        let mut set = SessionSet::new();
        for i in 0..pairs {
            let path = router
                .shortest_path(hosts[2 * i], hosts[2 * i + 1])
                .unwrap();
            set.insert(Session::new(
                SessionId(i as u64),
                path,
                RateLimit::unlimited(),
            ));
        }
        (net, set)
    }

    #[test]
    fn splits_a_shared_bottleneck_evenly() {
        let (net, sessions) = dumbbell_sessions(5, 100.0);
        let alloc = CentralizedBneck::new(&net, &sessions).solve();
        for i in 0..5 {
            assert!((alloc.rate(SessionId(i)).unwrap() - 20e6).abs() < 1.0);
        }
    }

    #[test]
    fn respects_rate_limits() {
        let (net, mut sessions) = dumbbell_sessions(3, 90.0);
        sessions.change_limit(SessionId(0), RateLimit::finite(10e6));
        let alloc = CentralizedBneck::new(&net, &sessions).solve();
        assert!((alloc.rate(SessionId(0)).unwrap() - 10e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(1)).unwrap() - 40e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(2)).unwrap() - 40e6).abs() < 1.0);
    }

    #[test]
    fn reports_bottleneck_structure() {
        let (net, sessions) = dumbbell_sessions(2, 50.0);
        let solution = CentralizedBneck::new(&net, &sessions).solve_with_bottlenecks();
        // Exactly one system bottleneck: the shared 50 Mbps link.
        let bottlenecks: Vec<_> = solution.bottleneck_links().collect();
        assert_eq!(bottlenecks.len(), 1);
        let b = bottlenecks[0];
        assert_eq!(b.restricted.len(), 2);
        assert!(b.unrestricted.is_empty());
        assert!((b.bottleneck_rate.unwrap() - 25e6).abs() < 1.0);
        // Access links carry one session each, restricted elsewhere.
        let access = solution.links.iter().filter(|l| !l.is_bottleneck()).count();
        assert!(access > 0);
        assert!(solution.link(b.link).is_some());
    }

    #[test]
    fn empty_sessions_empty_solution() {
        let (net, _) = dumbbell_sessions(1, 50.0);
        let empty = SessionSet::new();
        let solution = CentralizedBneck::new(&net, &empty).solve_with_bottlenecks();
        assert!(solution.allocation.is_empty());
        assert!(solution.links.is_empty());
    }

    #[test]
    fn agrees_with_water_filling_on_dependent_bottlenecks() {
        // Chain of routers with crossing sessions of different lengths.
        let net = synthetic::parking_lot(4, mbps(100.0), mbps(50.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        let mut sessions = SessionSet::new();
        // Long session end to end plus short ones on each segment.
        sessions.insert(Session::new(
            SessionId(0),
            router.shortest_path(hosts[0], hosts[4]).unwrap(),
            RateLimit::unlimited(),
        ));
        for i in 0..4 {
            sessions.insert(Session::new(
                SessionId(1 + i as u64),
                router.shortest_path(hosts[i], hosts[i + 1]).unwrap(),
                RateLimit::unlimited(),
            ));
        }
        let a = CentralizedBneck::new(&net, &sessions).solve();
        let b = WaterFilling::new(&net, &sessions).solve();
        for s in sessions.iter() {
            let ra = a.rate(s.id()).unwrap();
            let rb = b.rate(s.id()).unwrap();
            assert!(
                (ra - rb).abs() <= 1.0,
                "session {}: centralized {} vs waterfill {}",
                s.id(),
                ra,
                rb
            );
        }
    }

    #[test]
    fn random_transit_stub_agrees_with_water_filling() {
        let net = bneck_net::topology::transit_stub::paper_network(
            NetworkSize::Small,
            60,
            DelayModel::Lan,
            17,
        );
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut rng = SmallRng::seed_from_u64(99);
        let mut router = Router::new(&net);
        let mut sessions = SessionSet::new();
        let mut id = 0u64;
        for chunk in hosts.chunks(2) {
            if chunk.len() < 2 {
                break;
            }
            if let Some(path) = router.shortest_path(chunk[0], chunk[1]) {
                let limit = if rng.gen_bool(0.3) {
                    RateLimit::finite(rng.gen_range(1e6..50e6))
                } else {
                    RateLimit::unlimited()
                };
                sessions.insert(Session::new(SessionId(id), path, limit));
                id += 1;
            }
        }
        assert!(sessions.len() >= 20);
        let a = CentralizedBneck::new(&net, &sessions).solve();
        let b = WaterFilling::new(&net, &sessions).solve();
        for s in sessions.iter() {
            let ra = a.rate(s.id()).unwrap();
            let rb = b.rate(s.id()).unwrap();
            let rel = (ra - rb).abs() / ra.max(rb).max(1.0);
            assert!(rel < 1e-6, "session {} mismatch: {} vs {}", s.id(), ra, rb);
        }
    }
}
