//! Centralized B-Neck (Figure 1 of the paper).
//!
//! The algorithm discovers bottleneck links iteratively, in increasing order
//! of their bottleneck rates. For every link it maintains the set `R_e` of
//! sessions restricted at the link and `F_e` of sessions restricted elsewhere,
//! computes the estimate `B_e = (C_e − Σ_{s∈F_e} λ*_s) / |R_e|`, assigns the
//! minimum estimate to all sessions of the corresponding links, and removes
//! those links from consideration.
//!
//! Maximum rate requests are modelled, as in the paper, by an additional
//! per-session constraint with capacity `r_s` (equivalently, the effective
//! bandwidth `D_s = min(C_e, r_s)` of the first link).

use crate::rate::{Rate, Tolerance};
use crate::session::{Allocation, SessionId, SessionSet};
use crate::workspace::{SolverWorkspace, NONE};
use bneck_net::{LinkId, Network};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// The bottleneck structure of one link in the max-min fair allocation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct LinkBottleneck {
    /// The link this entry describes.
    pub link: LinkId,
    /// The sessions restricted at this link (`R*_e`).
    pub restricted: Vec<SessionId>,
    /// The sessions crossing this link but restricted elsewhere (`F*_e`).
    pub unrestricted: Vec<SessionId>,
    /// The bottleneck rate `B*_e`; `None` when no session is restricted at
    /// this link (in which case its bandwidth is not fully assigned).
    pub bottleneck_rate: Option<Rate>,
}

impl LinkBottleneck {
    /// `true` if this link is a bottleneck of the system (some session is
    /// restricted at it).
    pub fn is_bottleneck(&self) -> bool {
        self.bottleneck_rate.is_some()
    }
}

/// Result of a centralized B-Neck computation: the allocation plus the
/// per-link bottleneck structure.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct CentralizedSolution {
    /// The max-min fair rate of every session.
    pub allocation: Allocation,
    /// Per-link bottleneck sets, for every link crossed by at least one
    /// session.
    pub links: Vec<LinkBottleneck>,
}

impl CentralizedSolution {
    /// The bottleneck entry of `link`, if the link carries any session.
    pub fn link(&self, link: LinkId) -> Option<&LinkBottleneck> {
        self.links.iter().find(|l| l.link == link)
    }

    /// Iterates over the links that are bottlenecks of the system.
    pub fn bottleneck_links(&self) -> impl Iterator<Item = &LinkBottleneck> {
        self.links.iter().filter(|l| l.is_bottleneck())
    }
}

/// The Centralized B-Neck solver (Figure 1).
///
/// # Example
///
/// ```
/// use bneck_net::prelude::*;
/// use bneck_maxmin::prelude::*;
///
/// let net = synthetic::dumbbell(2, Capacity::from_mbps(100.0),
///                               Capacity::from_mbps(50.0), Delay::from_micros(1));
/// let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
/// let mut router = Router::new(&net);
/// let mut sessions = SessionSet::new();
/// for i in 0..2 {
///     let path = router.shortest_path(hosts[2 * i], hosts[2 * i + 1]).unwrap();
///     sessions.insert(Session::new(SessionId(i as u64), path, RateLimit::unlimited()));
/// }
/// let solution = CentralizedBneck::new(&net, &sessions).solve_with_bottlenecks();
/// assert_eq!(solution.bottleneck_links().count(), 1);
/// assert!((solution.allocation.rate(SessionId(0)).unwrap() - 25e6).abs() < 1.0);
/// ```
#[derive(Debug)]
pub struct CentralizedBneck<'a> {
    network: &'a Network,
    sessions: &'a SessionSet,
    tolerance: Tolerance,
}

impl<'a> CentralizedBneck<'a> {
    /// Creates a solver for the given network and session set.
    pub fn new(network: &'a Network, sessions: &'a SessionSet) -> Self {
        CentralizedBneck {
            network,
            sessions,
            tolerance: Tolerance::default(),
        }
    }

    /// Overrides the comparison tolerance.
    pub fn with_tolerance(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Computes the max-min fair allocation.
    pub fn solve(&self) -> Allocation {
        self.solve_in(&mut SolverWorkspace::new())
    }

    /// Computes the max-min fair allocation using the caller's scratch
    /// buffers, so repeated solves allocate (almost) nothing per call.
    pub fn solve_in(&self, ws: &mut SolverWorkspace) -> Allocation {
        let mut allocation = Allocation::new();
        self.run(ws);
        for (slot, session) in self.sessions.iter_with_slots() {
            allocation.set(session.id(), ws.rate[slot as usize]);
        }
        allocation
    }

    /// Computes the allocation together with each link's bottleneck sets.
    pub fn solve_with_bottlenecks(&self) -> CentralizedSolution {
        self.solve_with_bottlenecks_in(&mut SolverWorkspace::new())
    }

    /// [`CentralizedBneck::solve_with_bottlenecks`] with caller-provided
    /// scratch buffers (the reported solution still owns its memory).
    pub fn solve_with_bottlenecks_in(&self, ws: &mut SolverWorkspace) -> CentralizedSolution {
        let allocation = self.solve_in(ws);

        // Report the per-link bottleneck structure. A session is restricted
        // at a link iff it was assigned in the round the link's constraint
        // was identified as a bottleneck; everything else crossing the link
        // is restricted elsewhere.
        let mut links = Vec::with_capacity(ws.link_ids.len());
        for (i, &link) in ws.link_ids.iter().enumerate() {
            let bottleneck_round = ws.cons_round[i];
            ws.pairs.clear();
            for &slot in self.sessions.slots_on_link(link) {
                let session = self.sessions.session_at(slot).expect("session exists");
                ws.pairs.push((session.id(), slot));
            }
            ws.pairs.sort_unstable();
            let mut restricted = Vec::new();
            let mut unrestricted = Vec::new();
            let mut assigned: Rate = 0.0;
            for &(id, slot) in ws.pairs.iter() {
                if bottleneck_round != NONE && ws.round[slot as usize] == bottleneck_round {
                    restricted.push(id);
                } else {
                    unrestricted.push(id);
                    assigned += ws.rate[slot as usize];
                }
            }
            let bottleneck_rate = if restricted.is_empty() {
                None
            } else {
                Some((ws.cap[i] - assigned).max(0.0) / restricted.len() as f64)
            };
            links.push(LinkBottleneck {
                link,
                restricted,
                unrestricted,
                bottleneck_rate,
            });
        }

        CentralizedSolution { allocation, links }
    }

    /// Runs Figure 1 on flat constraint arrays, leaving per-slot rates and
    /// rounds plus per-constraint bottleneck rounds in the workspace.
    ///
    /// Constraints are the used links (in [`SessionSet::used_links`] order)
    /// followed by one private constraint per rate-limited session. Instead
    /// of materializing the `R_e` / `F_e` session sets, the loop maintains
    /// each constraint's undecided-member count and granted-rate sum
    /// incrementally: assigning a session only touches the constraints on its
    /// path.
    fn run(&self, ws: &mut SolverWorkspace) {
        let tol = self.tolerance;

        ws.init_link_constraints(self.network, self.sessions);
        let link_cons = ws.link_ids.len();
        ws.cons_member.clear();
        ws.round.clear();
        ws.round.resize(self.sessions.slot_capacity(), NONE);
        ws.limit_cons.clear();
        ws.limit_cons.resize(self.sessions.slot_capacity(), NONE);
        for (slot, session) in self.sessions.iter_with_slots() {
            if !session.limit().is_unlimited() {
                ws.limit_cons[slot as usize] = (link_cons + ws.cons_member.len()) as u32;
                ws.cons_member.push(slot);
                ws.cap.push(session.limit().as_bps());
                ws.active.push(1);
                ws.granted.push(0.0);
            }
        }
        let cons = ws.cap.len();
        ws.cons_live.clear();
        ws.cons_live.resize(cons, true);
        ws.cons_est.clear();
        ws.cons_est.resize(cons, f64::INFINITY);
        ws.cons_round.clear();
        ws.cons_round.resize(cons, NONE);
        let mut live = cons;

        let mut round = 0u32;
        while live > 0 {
            // B_e ← (C_e − Σ_{s∈F_e} λ*_s) / |R_e| for each live constraint.
            let mut min_estimate = f64::INFINITY;
            for c in 0..cons {
                if !ws.cons_live[c] {
                    continue;
                }
                let estimate = (ws.cap[c] - ws.granted[c]).max(0.0) / ws.active[c] as f64;
                ws.cons_est[c] = estimate;
                min_estimate = min_estimate.min(estimate);
            }
            // L' ← argmin; X ← union of R_e over L'. The estimates were all
            // taken before any assignment, so marking argmin constraints and
            // assigning their members in one sweep matches Figure 1.
            ws.newly.clear();
            for c in 0..cons {
                if !ws.cons_live[c] || !tol.eq(ws.cons_est[c], min_estimate) {
                    continue;
                }
                ws.cons_live[c] = false;
                ws.cons_round[c] = round;
                live -= 1;
                let members = if c < link_cons {
                    self.sessions.slots_on_link(ws.link_ids[c])
                } else {
                    std::slice::from_ref(&ws.cons_member[c - link_cons])
                };
                for &slot in members {
                    if ws.rate[slot as usize].is_nan() {
                        ws.rate[slot as usize] = min_estimate;
                        ws.round[slot as usize] = round;
                        ws.newly.push(slot);
                    }
                }
            }
            // Move the newly assigned sessions to F_e on every other live
            // constraint they cross, dropping constraints that drained.
            for k in 0..ws.newly.len() {
                let slot = ws.newly[k];
                let session = self.sessions.session_at(slot).expect("session exists");
                for &link in session.path().links() {
                    let c = ws.link_pos[link.index()] as usize;
                    if ws.cons_live[c] {
                        ws.active[c] -= 1;
                        ws.granted[c] += min_estimate;
                        if ws.active[c] == 0 {
                            ws.cons_live[c] = false;
                            live -= 1;
                        }
                    }
                }
                let lc = ws.limit_cons[slot as usize];
                if lc != NONE && ws.cons_live[lc as usize] {
                    ws.cons_live[lc as usize] = false;
                    live -= 1;
                }
            }
            round += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::RateLimit;
    use crate::session::Session;
    use crate::waterfill::WaterFilling;
    use bneck_net::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn mbps(x: f64) -> Capacity {
        Capacity::from_mbps(x)
    }
    fn us(x: u64) -> Delay {
        Delay::from_micros(x)
    }

    fn dumbbell_sessions(pairs: usize, bottleneck_mbps: f64) -> (Network, SessionSet) {
        let net = synthetic::dumbbell(pairs, mbps(100.0), mbps(bottleneck_mbps), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        let mut set = SessionSet::new();
        for i in 0..pairs {
            let path = router
                .shortest_path(hosts[2 * i], hosts[2 * i + 1])
                .unwrap();
            set.insert(Session::new(
                SessionId(i as u64),
                path,
                RateLimit::unlimited(),
            ));
        }
        (net, set)
    }

    #[test]
    fn splits_a_shared_bottleneck_evenly() {
        let (net, sessions) = dumbbell_sessions(5, 100.0);
        let alloc = CentralizedBneck::new(&net, &sessions).solve();
        for i in 0..5 {
            assert!((alloc.rate(SessionId(i)).unwrap() - 20e6).abs() < 1.0);
        }
    }

    #[test]
    fn respects_rate_limits() {
        let (net, mut sessions) = dumbbell_sessions(3, 90.0);
        sessions.change_limit(SessionId(0), RateLimit::finite(10e6));
        let alloc = CentralizedBneck::new(&net, &sessions).solve();
        assert!((alloc.rate(SessionId(0)).unwrap() - 10e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(1)).unwrap() - 40e6).abs() < 1.0);
        assert!((alloc.rate(SessionId(2)).unwrap() - 40e6).abs() < 1.0);
    }

    #[test]
    fn reports_bottleneck_structure() {
        let (net, sessions) = dumbbell_sessions(2, 50.0);
        let solution = CentralizedBneck::new(&net, &sessions).solve_with_bottlenecks();
        // Exactly one system bottleneck: the shared 50 Mbps link.
        let bottlenecks: Vec<_> = solution.bottleneck_links().collect();
        assert_eq!(bottlenecks.len(), 1);
        let b = bottlenecks[0];
        assert_eq!(b.restricted.len(), 2);
        assert!(b.unrestricted.is_empty());
        assert!((b.bottleneck_rate.unwrap() - 25e6).abs() < 1.0);
        // Access links carry one session each, restricted elsewhere.
        let access = solution.links.iter().filter(|l| !l.is_bottleneck()).count();
        assert!(access > 0);
        assert!(solution.link(b.link).is_some());
    }

    #[test]
    fn empty_sessions_empty_solution() {
        let (net, _) = dumbbell_sessions(1, 50.0);
        let empty = SessionSet::new();
        let solution = CentralizedBneck::new(&net, &empty).solve_with_bottlenecks();
        assert!(solution.allocation.is_empty());
        assert!(solution.links.is_empty());
    }

    #[test]
    fn agrees_with_water_filling_on_dependent_bottlenecks() {
        // Chain of routers with crossing sessions of different lengths.
        let net = synthetic::parking_lot(4, mbps(100.0), mbps(50.0), us(1));
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        let mut sessions = SessionSet::new();
        // Long session end to end plus short ones on each segment.
        sessions.insert(Session::new(
            SessionId(0),
            router.shortest_path(hosts[0], hosts[4]).unwrap(),
            RateLimit::unlimited(),
        ));
        for i in 0..4 {
            sessions.insert(Session::new(
                SessionId(1 + i as u64),
                router.shortest_path(hosts[i], hosts[i + 1]).unwrap(),
                RateLimit::unlimited(),
            ));
        }
        let a = CentralizedBneck::new(&net, &sessions).solve();
        let b = WaterFilling::new(&net, &sessions).solve();
        for s in sessions.iter() {
            let ra = a.rate(s.id()).unwrap();
            let rb = b.rate(s.id()).unwrap();
            assert!(
                (ra - rb).abs() <= 1.0,
                "session {}: centralized {} vs waterfill {}",
                s.id(),
                ra,
                rb
            );
        }
    }

    #[test]
    fn random_transit_stub_agrees_with_water_filling() {
        let net = bneck_net::topology::transit_stub::paper_network(
            NetworkSize::Small,
            60,
            DelayModel::Lan,
            17,
        );
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut rng = SmallRng::seed_from_u64(99);
        let mut router = Router::new(&net);
        let mut sessions = SessionSet::new();
        let mut id = 0u64;
        for chunk in hosts.chunks(2) {
            if chunk.len() < 2 {
                break;
            }
            if let Some(path) = router.shortest_path(chunk[0], chunk[1]) {
                let limit = if rng.gen_bool(0.3) {
                    RateLimit::finite(rng.gen_range(1e6..50e6))
                } else {
                    RateLimit::unlimited()
                };
                sessions.insert(Session::new(SessionId(id), path, limit));
                id += 1;
            }
        }
        assert!(sessions.len() >= 20);
        let a = CentralizedBneck::new(&net, &sessions).solve();
        let b = WaterFilling::new(&net, &sessions).solve();
        for s in sessions.iter() {
            let ra = a.rate(s.id()).unwrap();
            let rb = b.rate(s.id()).unwrap();
            let rel = (ra - rb).abs() / ra.max(rb).max(1.0);
            assert!(rel < 1e-6, "session {} mismatch: {} vs {}", s.id(), ra, rb);
        }
    }
}
