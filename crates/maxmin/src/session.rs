//! Sessions and session sets.

use crate::rate::{Rate, RateLimit};
use bneck_net::{LinkId, Path};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Identifier of a session.
///
/// Session identifiers are chosen by the creator of the session (the workload
/// generator uses consecutive integers); they only need to be unique among
/// concurrently active sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A session: a static path from a source host to a destination host plus the
/// maximum rate the session requests.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Session {
    id: SessionId,
    path: Path,
    limit: RateLimit,
}

impl Session {
    /// Creates a session with the given identifier, path `π(s)` and maximum
    /// requested rate `r_s`.
    pub fn new(id: SessionId, path: Path, limit: RateLimit) -> Self {
        Session { id, path, limit }
    }

    /// The session's identifier.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The session's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The maximum rate the session requests.
    pub fn limit(&self) -> RateLimit {
        self.limit
    }

    /// Replaces the maximum requested rate (models `API.Change`).
    pub fn set_limit(&mut self, limit: RateLimit) {
        self.limit = limit;
    }
}

/// An indexed collection of active sessions.
///
/// Besides storing sessions by identifier, a `SessionSet` maintains the
/// reverse index from links to the sessions that cross them (`S_e` in the
/// paper), which every max-min algorithm needs.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SessionSet {
    sessions: BTreeMap<SessionId, Session>,
    by_link: HashMap<LinkId, Vec<SessionId>>,
}

impl SessionSet {
    /// Creates an empty session set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of active sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no session is active.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Adds (or replaces) a session. Returns the previous session with the
    /// same identifier, if any.
    pub fn insert(&mut self, session: Session) -> Option<Session> {
        let prev = self.remove(session.id());
        for &link in session.path().links() {
            self.by_link.entry(link).or_default().push(session.id());
        }
        self.sessions.insert(session.id(), session);
        prev
    }

    /// Removes a session, returning it if it was present.
    pub fn remove(&mut self, id: SessionId) -> Option<Session> {
        let session = self.sessions.remove(&id)?;
        for &link in session.path().links() {
            if let Some(v) = self.by_link.get_mut(&link) {
                v.retain(|s| *s != id);
                if v.is_empty() {
                    self.by_link.remove(&link);
                }
            }
        }
        Some(session)
    }

    /// Looks up a session by identifier.
    pub fn get(&self, id: SessionId) -> Option<&Session> {
        self.sessions.get(&id)
    }

    /// Changes the maximum requested rate of a session (models `API.Change`).
    ///
    /// Returns `false` if the session is not present.
    pub fn change_limit(&mut self, id: SessionId, limit: RateLimit) -> bool {
        match self.sessions.get_mut(&id) {
            Some(s) => {
                s.set_limit(limit);
                true
            }
            None => false,
        }
    }

    /// Iterates over sessions in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = &Session> {
        self.sessions.values()
    }

    /// The sessions crossing `link` (`S_e`), in insertion order.
    pub fn sessions_on_link(&self, link: LinkId) -> &[SessionId] {
        self.by_link.get(&link).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over the links crossed by at least one session.
    pub fn used_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.by_link.keys().copied()
    }
}

impl FromIterator<Session> for SessionSet {
    fn from_iter<T: IntoIterator<Item = Session>>(iter: T) -> Self {
        let mut set = SessionSet::new();
        for s in iter {
            set.insert(s);
        }
        set
    }
}

impl Extend<Session> for SessionSet {
    fn extend<T: IntoIterator<Item = Session>>(&mut self, iter: T) {
        for s in iter {
            self.insert(s);
        }
    }
}

/// A rate allocation: the rate assigned to each session.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Allocation {
    rates: BTreeMap<SessionId, Rate>,
}

impl Allocation {
    /// Creates an empty allocation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the rate of a session.
    pub fn set(&mut self, id: SessionId, rate: Rate) {
        self.rates.insert(id, rate);
    }

    /// The rate assigned to a session, if any.
    pub fn rate(&self, id: SessionId) -> Option<Rate> {
        self.rates.get(&id).copied()
    }

    /// Number of sessions with an assigned rate.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// `true` when no session has an assigned rate.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Iterates over `(session, rate)` pairs in session-identifier order.
    pub fn iter(&self) -> impl Iterator<Item = (SessionId, Rate)> + '_ {
        self.rates.iter().map(|(k, v)| (*k, *v))
    }

    /// The sum of the assigned rates of the given sessions (missing sessions
    /// contribute zero).
    pub fn sum_over<'a>(&self, sessions: impl IntoIterator<Item = &'a SessionId>) -> Rate {
        sessions.into_iter().filter_map(|s| self.rate(*s)).sum()
    }
}

impl FromIterator<(SessionId, Rate)> for Allocation {
    fn from_iter<T: IntoIterator<Item = (SessionId, Rate)>>(iter: T) -> Self {
        Allocation {
            rates: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bneck_net::prelude::*;

    fn star_sessions(hosts: usize) -> (Network, SessionSet) {
        let net = synthetic::star(hosts, Capacity::from_mbps(100.0), Delay::from_micros(1));
        let ids: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        let mut set = SessionSet::new();
        for i in 0..hosts - 1 {
            let path = router.shortest_path(ids[i], ids[i + 1]).unwrap();
            set.insert(Session::new(
                SessionId(i as u64),
                path,
                RateLimit::unlimited(),
            ));
        }
        (net, set)
    }

    #[test]
    fn insert_remove_and_lookup() {
        let (_net, mut set) = star_sessions(4);
        assert_eq!(set.len(), 3);
        assert!(set.get(SessionId(1)).is_some());
        let removed = set.remove(SessionId(1)).unwrap();
        assert_eq!(removed.id(), SessionId(1));
        assert_eq!(set.len(), 2);
        assert!(set.get(SessionId(1)).is_none());
        assert!(set.remove(SessionId(1)).is_none());
    }

    #[test]
    fn link_index_tracks_membership() {
        let (net, mut set) = star_sessions(3);
        // Sessions 0: h0->h1, 1: h1->h2. The link h1->hub carries session 1,
        // and the link hub->h1 carries session 0.
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let hub = net.routers().next().unwrap().id();
        let up = net.link_between(hosts[1], hub).unwrap();
        let down = net.link_between(hub, hosts[1]).unwrap();
        assert_eq!(set.sessions_on_link(up), &[SessionId(1)]);
        assert_eq!(set.sessions_on_link(down), &[SessionId(0)]);
        set.remove(SessionId(1));
        assert!(set.sessions_on_link(up).is_empty());
        assert_eq!(set.used_links().count(), 2);
    }

    #[test]
    fn reinserting_replaces_previous_session() {
        let (_net, mut set) = star_sessions(3);
        let existing = set.get(SessionId(0)).unwrap().clone();
        let mut replacement = existing.clone();
        replacement.set_limit(RateLimit::finite(1e6));
        let prev = set.insert(replacement).unwrap();
        assert_eq!(prev, existing);
        assert_eq!(set.len(), 2);
        assert_eq!(
            set.get(SessionId(0)).unwrap().limit(),
            RateLimit::finite(1e6)
        );
    }

    #[test]
    fn change_limit() {
        let (_net, mut set) = star_sessions(3);
        assert!(set.change_limit(SessionId(0), RateLimit::finite(5e6)));
        assert_eq!(
            set.get(SessionId(0)).unwrap().limit(),
            RateLimit::finite(5e6)
        );
        assert!(!set.change_limit(SessionId(99), RateLimit::unlimited()));
    }

    #[test]
    fn allocation_sums() {
        let mut alloc = Allocation::new();
        alloc.set(SessionId(0), 10.0);
        alloc.set(SessionId(1), 20.0);
        assert_eq!(alloc.rate(SessionId(0)), Some(10.0));
        assert_eq!(alloc.rate(SessionId(7)), None);
        assert_eq!(alloc.len(), 2);
        let ids = [SessionId(0), SessionId(1), SessionId(7)];
        assert_eq!(alloc.sum_over(ids.iter()), 30.0);
        let from_iter: Allocation = vec![(SessionId(3), 1.0)].into_iter().collect();
        assert_eq!(from_iter.rate(SessionId(3)), Some(1.0));
    }

    #[test]
    fn session_set_collects_from_iterator() {
        let (_net, set) = star_sessions(5);
        let rebuilt: SessionSet = set.iter().cloned().collect();
        assert_eq!(rebuilt.len(), set.len());
    }
}
