//! Sessions and session sets.

use crate::rate::{Rate, RateLimit};
use bneck_net::{LinkId, Path};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a session.
///
/// Session identifiers are chosen by the creator of the session (the workload
/// generator uses consecutive integers); they only need to be unique among
/// concurrently active sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A session: a static path from a source host to a destination host plus the
/// maximum rate the session requests.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Session {
    id: SessionId,
    path: Path,
    limit: RateLimit,
}

impl Session {
    /// Creates a session with the given identifier, path `π(s)` and maximum
    /// requested rate `r_s`.
    pub fn new(id: SessionId, path: Path, limit: RateLimit) -> Self {
        Session { id, path, limit }
    }

    /// The session's identifier.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The session's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The maximum rate the session requests.
    pub fn limit(&self) -> RateLimit {
        self.limit
    }

    /// Replaces the maximum requested rate (models `API.Change`).
    pub fn set_limit(&mut self, limit: RateLimit) {
        self.limit = limit;
    }
}

/// The sessions crossing one link, kept as parallel identifier / arena-slot
/// arrays so that callers can pick whichever representation is cheaper.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
struct LinkSessions {
    ids: Vec<SessionId>,
    slots: Vec<u32>,
    /// `true` once the link has been pushed onto the `used` list.
    listed: bool,
}

/// An indexed collection of active sessions.
///
/// Besides storing sessions by identifier, a `SessionSet` maintains the
/// reverse index from links to the sessions that cross them (`S_e` in the
/// paper), which every max-min algorithm needs.
///
/// Sessions live in a dense arena of reusable slots: every active session has
/// a stable [`slot`](SessionSet::slot_of) in `0..slot_capacity()` for the
/// duration of its membership, so solvers can keep per-session state in flat
/// vectors instead of hash maps. The link reverse index is likewise a flat
/// vector indexed by [`LinkId`], exposing both session identifiers
/// ([`sessions_on_link`](SessionSet::sessions_on_link)) and arena slots
/// ([`slots_on_link`](SessionSet::slots_on_link)).
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SessionSet {
    /// Dense arena; `None` marks a reusable vacant slot.
    slots: Vec<Option<Session>>,
    /// Vacant arena slots available for reuse.
    free: Vec<u32>,
    /// Identifier → slot, ordered so iteration stays in identifier order.
    index: BTreeMap<SessionId, u32>,
    /// Reverse index, indexed by `LinkId::index()`.
    by_link: Vec<LinkSessions>,
    /// Links that have carried at least one session (may contain links whose
    /// crossing set is currently empty; iteration filters them out).
    used: Vec<LinkId>,
}

impl SessionSet {
    /// Creates an empty session set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of active sessions.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no session is active.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Adds (or replaces) a session. Returns the previous session with the
    /// same identifier, if any.
    pub fn insert(&mut self, session: Session) -> Option<Session> {
        let prev = self.remove(session.id());
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        for &link in session.path().links() {
            if link.index() >= self.by_link.len() {
                self.by_link.resize_with(link.index() + 1, Default::default);
            }
            let entry = &mut self.by_link[link.index()];
            entry.ids.push(session.id());
            entry.slots.push(slot);
            if !entry.listed {
                entry.listed = true;
                self.used.push(link);
            }
        }
        self.index.insert(session.id(), slot);
        self.slots[slot as usize] = Some(session);
        prev
    }

    /// Removes a session, returning it if it was present.
    ///
    /// Each per-link crossing list drops the session by swap-remove — O(1)
    /// per link after the position scan, instead of shifting the tail of a
    /// mega-shared link's list — which is what makes churn on links crossed
    /// by tens of thousands of sessions cheap. This is why the crossing-list
    /// order is only insertion order until a removal touches the link (see
    /// [`SessionSet::sessions_on_link`]).
    pub fn remove(&mut self, id: SessionId) -> Option<Session> {
        let slot = self.index.remove(&id)?;
        let session = self.slots[slot as usize].take().expect("slot occupied");
        self.free.push(slot);
        for &link in session.path().links() {
            let entry = &mut self.by_link[link.index()];
            if let Some(pos) = entry.ids.iter().position(|s| *s == id) {
                entry.ids.swap_remove(pos);
                entry.slots.swap_remove(pos);
            }
        }
        Some(session)
    }

    /// Looks up a session by identifier.
    pub fn get(&self, id: SessionId) -> Option<&Session> {
        let slot = *self.index.get(&id)?;
        self.slots[slot as usize].as_ref()
    }

    /// Changes the maximum requested rate of a session (models `API.Change`).
    ///
    /// Returns `false` if the session is not present.
    pub fn change_limit(&mut self, id: SessionId, limit: RateLimit) -> bool {
        let Some(&slot) = self.index.get(&id) else {
            return false;
        };
        self.slots[slot as usize]
            .as_mut()
            .expect("slot occupied")
            .set_limit(limit);
        true
    }

    /// Iterates over sessions in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = &Session> {
        self.index
            .values()
            .map(|slot| self.slots[*slot as usize].as_ref().expect("slot occupied"))
    }

    /// The sessions crossing `link` (`S_e`).
    ///
    /// Ordering contract: the list is in insertion order until the first
    /// removal of a session crossing `link`; a removal swaps the last entry
    /// into the vacated position, so afterwards the order is unspecified.
    /// Every consumer in this workspace (the solvers, the verifier, the
    /// workspace builder) is order-insensitive — sums, counts and same-value
    /// freezes only.
    pub fn sessions_on_link(&self, link: LinkId) -> &[SessionId] {
        self.by_link
            .get(link.index())
            .map(|e| e.ids.as_slice())
            .unwrap_or(&[])
    }

    /// The arena slots of the sessions crossing `link`, parallel to
    /// [`sessions_on_link`](SessionSet::sessions_on_link) (and with the same
    /// ordering contract).
    pub fn slots_on_link(&self, link: LinkId) -> &[u32] {
        self.by_link
            .get(link.index())
            .map(|e| e.slots.as_slice())
            .unwrap_or(&[])
    }

    /// Iterates over the links crossed by at least one session.
    pub fn used_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.used
            .iter()
            .copied()
            .filter(|l| !self.by_link[l.index()].ids.is_empty())
    }

    /// Upper bound (exclusive) on the arena slots currently handed out; usable
    /// as the length of per-session scratch vectors indexed by slot.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// The arena slot of a session, stable while the session stays in the set.
    pub fn slot_of(&self, id: SessionId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    /// The session occupying an arena slot, if any.
    pub fn session_at(&self, slot: u32) -> Option<&Session> {
        self.slots.get(slot as usize)?.as_ref()
    }

    /// Iterates over `(slot, session)` pairs in identifier order.
    pub fn iter_with_slots(&self) -> impl Iterator<Item = (u32, &Session)> {
        self.index.values().map(|slot| {
            (
                *slot,
                self.slots[*slot as usize].as_ref().expect("slot occupied"),
            )
        })
    }
}

impl FromIterator<Session> for SessionSet {
    fn from_iter<T: IntoIterator<Item = Session>>(iter: T) -> Self {
        let mut set = SessionSet::new();
        for s in iter {
            set.insert(s);
        }
        set
    }
}

impl Extend<Session> for SessionSet {
    fn extend<T: IntoIterator<Item = Session>>(&mut self, iter: T) {
        for s in iter {
            self.insert(s);
        }
    }
}

/// A rate allocation: the rate assigned to each session.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Allocation {
    rates: BTreeMap<SessionId, Rate>,
}

impl Allocation {
    /// Creates an empty allocation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the rate of a session.
    pub fn set(&mut self, id: SessionId, rate: Rate) {
        self.rates.insert(id, rate);
    }

    /// The rate assigned to a session, if any.
    pub fn rate(&self, id: SessionId) -> Option<Rate> {
        self.rates.get(&id).copied()
    }

    /// Number of sessions with an assigned rate.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// `true` when no session has an assigned rate.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Iterates over `(session, rate)` pairs in session-identifier order.
    pub fn iter(&self) -> impl Iterator<Item = (SessionId, Rate)> + '_ {
        self.rates.iter().map(|(k, v)| (*k, *v))
    }

    /// The sum of the assigned rates of the given sessions (missing sessions
    /// contribute zero).
    pub fn sum_over<'a>(&self, sessions: impl IntoIterator<Item = &'a SessionId>) -> Rate {
        sessions.into_iter().filter_map(|s| self.rate(*s)).sum()
    }
}

impl FromIterator<(SessionId, Rate)> for Allocation {
    fn from_iter<T: IntoIterator<Item = (SessionId, Rate)>>(iter: T) -> Self {
        Allocation {
            rates: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bneck_net::prelude::*;

    fn star_sessions(hosts: usize) -> (Network, SessionSet) {
        let net = synthetic::star(hosts, Capacity::from_mbps(100.0), Delay::from_micros(1));
        let ids: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        let mut set = SessionSet::new();
        for i in 0..hosts - 1 {
            let path = router.shortest_path(ids[i], ids[i + 1]).unwrap();
            set.insert(Session::new(
                SessionId(i as u64),
                path,
                RateLimit::unlimited(),
            ));
        }
        (net, set)
    }

    #[test]
    fn insert_remove_and_lookup() {
        let (_net, mut set) = star_sessions(4);
        assert_eq!(set.len(), 3);
        assert!(set.get(SessionId(1)).is_some());
        let removed = set.remove(SessionId(1)).unwrap();
        assert_eq!(removed.id(), SessionId(1));
        assert_eq!(set.len(), 2);
        assert!(set.get(SessionId(1)).is_none());
        assert!(set.remove(SessionId(1)).is_none());
    }

    #[test]
    fn link_index_tracks_membership() {
        let (net, mut set) = star_sessions(3);
        // Sessions 0: h0->h1, 1: h1->h2. The link h1->hub carries session 1,
        // and the link hub->h1 carries session 0.
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let hub = net.routers().next().unwrap().id();
        let up = net.link_between(hosts[1], hub).unwrap();
        let down = net.link_between(hub, hosts[1]).unwrap();
        assert_eq!(set.sessions_on_link(up), &[SessionId(1)]);
        assert_eq!(set.sessions_on_link(down), &[SessionId(0)]);
        set.remove(SessionId(1));
        assert!(set.sessions_on_link(up).is_empty());
        assert_eq!(set.used_links().count(), 2);
    }

    #[test]
    fn reinserting_replaces_previous_session() {
        let (_net, mut set) = star_sessions(3);
        let existing = set.get(SessionId(0)).unwrap().clone();
        let mut replacement = existing.clone();
        replacement.set_limit(RateLimit::finite(1e6));
        let prev = set.insert(replacement).unwrap();
        assert_eq!(prev, existing);
        assert_eq!(set.len(), 2);
        assert_eq!(
            set.get(SessionId(0)).unwrap().limit(),
            RateLimit::finite(1e6)
        );
    }

    #[test]
    fn change_limit() {
        let (_net, mut set) = star_sessions(3);
        assert!(set.change_limit(SessionId(0), RateLimit::finite(5e6)));
        assert_eq!(
            set.get(SessionId(0)).unwrap().limit(),
            RateLimit::finite(5e6)
        );
        assert!(!set.change_limit(SessionId(99), RateLimit::unlimited()));
    }

    #[test]
    fn allocation_sums() {
        let mut alloc = Allocation::new();
        alloc.set(SessionId(0), 10.0);
        alloc.set(SessionId(1), 20.0);
        assert_eq!(alloc.rate(SessionId(0)), Some(10.0));
        assert_eq!(alloc.rate(SessionId(7)), None);
        assert_eq!(alloc.len(), 2);
        let ids = [SessionId(0), SessionId(1), SessionId(7)];
        assert_eq!(alloc.sum_over(ids.iter()), 30.0);
        let from_iter: Allocation = vec![(SessionId(3), 1.0)].into_iter().collect();
        assert_eq!(from_iter.rate(SessionId(3)), Some(1.0));
    }

    #[test]
    fn removal_clears_every_occurrence_of_a_looping_path() {
        // Path::from_links only checks adjacency, so a caller may build a
        // path that crosses the same link twice. Removal walks the path's
        // link list, so it must drop one reverse-index entry per crossing.
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1");
        let (ab, ba) = b.connect(r0, r1, Capacity::from_mbps(100.0), Delay::from_micros(1));
        let net = b.build();
        let loopy = Path::from_links(&net, vec![ab, ba, ab]);
        let mut set = SessionSet::new();
        set.insert(Session::new(SessionId(7), loopy, RateLimit::unlimited()));
        assert_eq!(set.sessions_on_link(ab), &[SessionId(7), SessionId(7)]);
        assert_eq!(set.slots_on_link(ab).len(), 2);
        set.remove(SessionId(7));
        assert!(set.sessions_on_link(ab).is_empty());
        assert!(set.slots_on_link(ab).is_empty());
        assert!(set.sessions_on_link(ba).is_empty());
        assert_eq!(set.used_links().count(), 0);
    }

    #[test]
    fn slots_are_stable_and_reused() {
        let (_net, mut set) = star_sessions(4);
        let slot1 = set.slot_of(SessionId(1)).unwrap();
        assert_eq!(set.session_at(slot1).unwrap().id(), SessionId(1));
        // Parallel id/slot views of a link agree.
        for link in set.used_links().collect::<Vec<_>>() {
            let ids = set.sessions_on_link(link).to_vec();
            let slots = set.slots_on_link(link).to_vec();
            assert_eq!(ids.len(), slots.len());
            for (id, slot) in ids.iter().zip(slots.iter()) {
                assert_eq!(set.session_at(*slot).unwrap().id(), *id);
                assert_eq!(set.slot_of(*id), Some(*slot));
            }
        }
        // Removing frees the slot; the next insert reuses it.
        let session = set.remove(SessionId(1)).unwrap();
        assert!(set.session_at(slot1).is_none());
        set.insert(session);
        assert_eq!(set.slot_of(SessionId(1)), Some(slot1));
        assert!(set.slot_capacity() >= set.len());
        let pairs: Vec<_> = set
            .iter_with_slots()
            .map(|(s, sess)| (s, sess.id()))
            .collect();
        assert_eq!(pairs.len(), set.len());
        for (slot, id) in pairs {
            assert_eq!(set.slot_of(id), Some(slot));
        }
    }

    #[test]
    fn session_set_collects_from_iterator() {
        let (_net, set) = star_sessions(5);
        let rebuilt: SessionSet = set.iter().cloned().collect();
        assert_eq!(rebuilt.len(), set.len());
    }
}
