//! Property-based tests of the max-min machinery: the two centralized
//! algorithms agree on random instances, their output satisfies the max-min
//! fairness conditions, and the allocation reacts to session removals and
//! rate limits the way the theory says it must.

use bneck_maxmin::prelude::*;
use bneck_net::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a random connected router mesh with one host per router and a
/// random set of sessions between distinct hosts.
fn random_instance(
    routers: usize,
    sessions: usize,
    seed: u64,
    limited_fraction: f64,
) -> (Network, SessionSet) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = NetworkBuilder::new();
    let router_ids: Vec<_> = (0..routers)
        .map(|i| builder.add_router(format!("r{i}")))
        .collect();
    // Ring for connectivity plus random chords with random capacities.
    for i in 0..routers {
        let j = (i + 1) % routers;
        if i < j || routers > 2 {
            let cap = Capacity::from_mbps(rng.gen_range(50.0..500.0));
            if !builder.has_link(router_ids[i], router_ids[j]) {
                builder.connect(router_ids[i], router_ids[j], cap, Delay::from_micros(1));
            }
        }
    }
    for i in 0..routers {
        for j in (i + 2)..routers {
            if rng.gen_bool(0.2) && !builder.has_link(router_ids[i], router_ids[j]) {
                let cap = Capacity::from_mbps(rng.gen_range(50.0..500.0));
                builder.connect(router_ids[i], router_ids[j], cap, Delay::from_micros(1));
            }
        }
    }
    let hosts: Vec<_> = router_ids
        .iter()
        .enumerate()
        .map(|(i, r)| {
            builder.add_host(
                format!("h{i}"),
                *r,
                Capacity::from_mbps(rng.gen_range(50.0..150.0)),
                Delay::from_micros(1),
            )
        })
        .collect();
    let network = builder.build();

    let mut router = Router::new(&network);
    let mut set = SessionSet::new();
    let mut id = 0u64;
    while set.len() < sessions && id < 10 * sessions as u64 {
        id += 1;
        let a = hosts[rng.gen_range(0..hosts.len())];
        let b = hosts[rng.gen_range(0..hosts.len())];
        if a == b {
            continue;
        }
        let Some(path) = router.shortest_path(a, b) else {
            continue;
        };
        let limit = if rng.gen_bool(limited_fraction) {
            RateLimit::finite(rng.gen_range(1e6..120e6))
        } else {
            RateLimit::unlimited()
        };
        set.insert(Session::new(SessionId(id), path, limit));
    }
    (network, set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The two independent oracle implementations always agree.
    #[test]
    fn centralized_bneck_agrees_with_water_filling(
        routers in 3usize..12,
        sessions in 1usize..25,
        seed in 0u64..10_000,
        limited in 0.0f64..0.6,
    ) {
        let (network, set) = random_instance(routers, sessions, seed, limited);
        prop_assume!(!set.is_empty());
        let a = CentralizedBneck::new(&network, &set).solve();
        let b = WaterFilling::new(&network, &set).solve();
        let tol = Tolerance::new(1e-6, 10.0);
        prop_assert!(compare_allocations(&set, &a, &b, tol).is_ok(),
            "oracles disagree: {a:?} vs {b:?}");
    }

    /// The oracle's allocation always satisfies the max-min fairness
    /// conditions (feasibility, limit compliance, bottleneck existence).
    #[test]
    fn oracle_allocation_is_max_min_fair(
        routers in 3usize..12,
        sessions in 1usize..25,
        seed in 0u64..10_000,
        limited in 0.0f64..0.6,
    ) {
        let (network, set) = random_instance(routers, sessions, seed, limited);
        prop_assume!(!set.is_empty());
        let allocation = CentralizedBneck::new(&network, &set).solve();
        prop_assert!(verify_max_min(&network, &set, &allocation).is_ok());
    }

    /// Every session's rate is bounded by its request and by the tightest
    /// link capacity on its path, and it is strictly positive.
    #[test]
    fn rates_are_positive_and_bounded(
        routers in 3usize..10,
        sessions in 1usize..20,
        seed in 0u64..10_000,
    ) {
        let (network, set) = random_instance(routers, sessions, seed, 0.4);
        prop_assume!(!set.is_empty());
        let allocation = CentralizedBneck::new(&network, &set).solve();
        let tol = Tolerance::default();
        for session in set.iter() {
            let rate = allocation.rate(session.id()).expect("every session gets a rate");
            prop_assert!(rate > 0.0);
            prop_assert!(tol.le(rate, session.limit().as_bps()));
            prop_assert!(tol.le(rate, session.path().min_capacity(&network).as_bps()));
        }
    }

    /// Removing a session improves the allocation of the survivors in the
    /// leximin order (per-session rates may individually go *down* — max-min
    /// fairness is famously not pointwise monotone — but the sorted rate
    /// vector of the survivors never gets lexicographically worse, because
    /// their old allocation is still feasible for the reduced problem).
    #[test]
    fn removal_improves_the_survivors_leximin(
        routers in 3usize..10,
        sessions in 2usize..18,
        seed in 0u64..10_000,
    ) {
        let (network, mut set) = random_instance(routers, sessions, seed, 0.3);
        prop_assume!(set.len() >= 2);
        let before = CentralizedBneck::new(&network, &set).solve();
        let victim = set.iter().next().expect("non-empty").id();
        set.remove(victim);
        let after = CentralizedBneck::new(&network, &set).solve();

        let mut old_sorted: Vec<f64> = set
            .iter()
            .map(|s| before.rate(s.id()).expect("assigned before"))
            .collect();
        let mut new_sorted: Vec<f64> = set
            .iter()
            .map(|s| after.rate(s.id()).expect("assigned after"))
            .collect();
        old_sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are not NaN"));
        new_sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are not NaN"));

        let tol = Tolerance::new(1e-9, 1.0);
        for (old, new) in old_sorted.iter().zip(new_sorted.iter()) {
            if tol.eq(*old, *new) {
                continue;
            }
            prop_assert!(
                *new > *old,
                "survivors' sorted rates got leximin-worse: {new} < {old} \
                 (old {old_sorted:?}, new {new_sorted:?})"
            );
            break;
        }
    }

    /// Capping a session strictly below its max-min rate gives it exactly the
    /// cap, and the resulting allocation is still max-min fair for the new
    /// requests.
    #[test]
    fn a_binding_limit_is_honoured_exactly(
        routers in 3usize..10,
        sessions in 2usize..15,
        seed in 0u64..10_000,
        cap_fraction in 0.1f64..0.9,
    ) {
        let (network, mut set) = random_instance(routers, sessions, seed, 0.0);
        prop_assume!(set.len() >= 2);
        let before = CentralizedBneck::new(&network, &set).solve();
        let victim = set.iter().next().expect("non-empty").id();
        let cap = before.rate(victim).expect("assigned") * cap_fraction;
        prop_assume!(cap > 1.0);
        set.change_limit(victim, RateLimit::finite(cap));
        let after = CentralizedBneck::new(&network, &set).solve();
        let tol = Tolerance::new(1e-9, 1.0);
        prop_assert!(tol.eq(after.rate(victim).unwrap(), cap),
            "a cap below the fair share must be granted exactly");
        prop_assert!(verify_max_min(&network, &set, &after).is_ok());
    }

    /// The sum of rates on every link never exceeds its capacity, and every
    /// link with a restricted session is exactly full (the bottleneck
    /// structure reported by the solver is consistent).
    #[test]
    fn bottleneck_structure_is_consistent(
        routers in 3usize..10,
        sessions in 1usize..20,
        seed in 0u64..10_000,
    ) {
        let (network, set) = random_instance(routers, sessions, seed, 0.3);
        prop_assume!(!set.is_empty());
        let solution = CentralizedBneck::new(&network, &set).solve_with_bottlenecks();
        let tol = Tolerance::new(1e-9, 1.0);
        for link in &solution.links {
            let capacity = network.link(link.link).capacity().as_bps();
            let crossing: f64 = link
                .restricted
                .iter()
                .chain(link.unrestricted.iter())
                .filter_map(|s| solution.allocation.rate(*s))
                .sum();
            prop_assert!(tol.le(crossing, capacity));
            if let Some(bottleneck_rate) = link.bottleneck_rate {
                // Restricted sessions all sit exactly at the bottleneck rate.
                for s in &link.restricted {
                    prop_assert!(tol.eq(solution.allocation.rate(*s).unwrap(), bottleneck_rate));
                }
                // Unrestricted sessions sit strictly below it.
                for s in &link.unrestricted {
                    prop_assert!(tol.lt(solution.allocation.rate(*s).unwrap(), bottleneck_rate));
                }
            }
        }
    }
}
