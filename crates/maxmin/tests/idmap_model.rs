//! Cross-validation of the inline open-addressing [`IdSlotMap`] against a
//! naive `BTreeMap` model: random insert/remove/lookup/iteration churn over a
//! small key space (so probe chains collide, tombstones accumulate and the
//! table rehashes), plus the dense-slot swap-remove pattern `RouterLink`
//! drives it with (a leave moves the last member into the freed slot and
//! re-points its index entry).

use bneck_maxmin::{IdSlotMap, SessionId};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_a_btreemap_model_under_churn(
        ops in prop::collection::vec((0u8..3, 0u64..48, 0u32..1000), 1..400),
    ) {
        let mut map = IdSlotMap::new();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for (op, key, val) in ops {
            match op {
                0 => prop_assert_eq!(map.insert(SessionId(key), val), model.insert(key, val)),
                1 => prop_assert_eq!(map.remove(SessionId(key)), model.remove(&key)),
                _ => prop_assert_eq!(map.get(SessionId(key)), model.get(&key).copied()),
            }
            prop_assert_eq!(map.len(), model.len());
            prop_assert!(map.is_empty() == model.is_empty());
        }
        let mut got: Vec<(u64, u32)> = map.iter().map(|(k, v)| (k.0, v)).collect();
        got.sort_unstable();
        let want: Vec<(u64, u32)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn tracks_dense_slots_across_swap_remove_churn(
        ops in prop::collection::vec((0u8..2, 0u64..32), 1..300),
    ) {
        // The RouterLink usage pattern: `members` is a dense vector, the map
        // resolves id → position, and a removal swap-removes so the moved
        // last id must be re-pointed. After every op the map must agree with
        // a linear scan of the dense vector (slot reuse included).
        let mut members: Vec<u64> = Vec::new();
        let mut map = IdSlotMap::new();
        for (op, id) in ops {
            let present = map.get(SessionId(id)).is_some();
            if op == 0 && !present {
                map.insert(SessionId(id), members.len() as u32);
                members.push(id);
            } else if op == 1 && present {
                let i = map.get(SessionId(id)).unwrap() as usize;
                map.remove(SessionId(id));
                members.swap_remove(i);
                if i < members.len() {
                    map.insert(SessionId(members[i]), i as u32);
                }
            }
            prop_assert_eq!(map.len(), members.len());
            for (pos, &m) in members.iter().enumerate() {
                prop_assert_eq!(map.get(SessionId(m)), Some(pos as u32));
            }
        }
    }
}
