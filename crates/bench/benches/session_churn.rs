//! Criterion benchmark of `SessionSet` maintenance under churn: the dense
//! arena must keep insert / remove / change-limit cheap at 10k live sessions,
//! since every `API.Join` / `API.Leave` / `API.Change` in the harness goes
//! through it.

use bneck_maxmin::prelude::*;
use bneck_net::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SESSIONS: usize = 10_000;

fn big_session_set() -> SessionSet {
    let network = synthetic::dumbbell(
        SESSIONS,
        Capacity::from_mbps(100.0),
        Capacity::from_gbps(100.0),
        Delay::from_micros(1),
    );
    let hosts: Vec<_> = network.hosts().map(|h| h.id()).collect();
    let mut router = Router::new(&network);
    (0..SESSIONS)
        .map(|i| {
            let path = router
                .shortest_path(hosts[2 * i], hosts[2 * i + 1])
                .expect("dumbbell pairs are connected");
            Session::new(SessionId(i as u64), path, RateLimit::unlimited())
        })
        .collect()
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_set_churn");
    let mut set = big_session_set();

    let mut victim = 0u64;
    group.bench_function(BenchmarkId::new("insert_remove", SESSIONS), |b| {
        b.iter(|| {
            let session = set.remove(SessionId(victim)).expect("session is live");
            set.insert(session);
            victim = (victim + 7) % SESSIONS as u64;
            set.len()
        });
    });

    let mut toggle = false;
    let mut target = 0u64;
    group.bench_function(BenchmarkId::new("change_limit", SESSIONS), |b| {
        b.iter(|| {
            let limit = if toggle {
                RateLimit::finite(5e6)
            } else {
                RateLimit::unlimited()
            };
            toggle = !toggle;
            target = (target + 13) % SESSIONS as u64;
            set.change_limit(SessionId(target), limit)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
