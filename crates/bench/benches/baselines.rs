//! Criterion benchmark behind Figures 7 and 8 (Experiment 3): cost of the
//! head-to-head comparison between B-Neck and the non-quiescent baselines over
//! a fixed observation horizon.

use bneck_bench::run_experiment3;
use bneck_net::Delay;
use bneck_workload::{Experiment3Config, NetworkScenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment3_baselines");
    group.sample_size(10);
    for baseline in ["BFYZ", "CG", "RCP"] {
        group.bench_with_input(
            BenchmarkId::new("bneck_vs", baseline),
            &baseline,
            |b, &baseline| {
                let config = Experiment3Config {
                    scenario: NetworkScenario::small_lan(150),
                    joins: 50,
                    leaves: 5,
                    horizon: Delay::from_millis(40),
                    ..Experiment3Config::scaled()
                };
                b.iter(|| {
                    let results = run_experiment3(&config, &[baseline]);
                    assert_eq!(results.len(), 2);
                    // B-Neck goes quiescent, the baseline does not.
                    assert!(results[0].quiescent_at_us.is_some());
                    assert!(results[1].quiescent_at_us.is_none());
                    results[1].total_packets
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
