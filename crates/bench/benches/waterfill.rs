//! Criterion benchmark of the centralized oracles (Water-Filling and
//! Centralized B-Neck, Figure 1 of the paper), which every experiment uses for
//! validation: cost of solving the max-min allocation as the number of
//! sessions grows.

use bneck_maxmin::prelude::*;
use bneck_net::DelayModel;
use bneck_workload::{LimitPolicy, NetworkScenario, SessionPlanner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn session_set(sessions: usize) -> (bneck_net::Network, SessionSet) {
    let scenario = NetworkScenario {
        size: bneck_net::NetworkSize::Small,
        delay_model: DelayModel::Lan,
        hosts: 2 * sessions,
        seed: 3,
    };
    let network = scenario.build();
    let mut planner = SessionPlanner::new(&network, 17);
    let requests = planner.plan(
        sessions,
        LimitPolicy::RandomFinite {
            probability: 0.2,
            min_bps: 1e6,
            max_bps: 80e6,
        },
    );
    let mut router = Router::new(&network);
    let set: SessionSet = requests
        .iter()
        .filter_map(|r| {
            let path = router.shortest_path(r.source, r.destination)?;
            Some(Session::new(r.session, path, r.limit))
        })
        .collect();
    (network, set)
}

use bneck_net::Router;

fn bench_oracles(c: &mut Criterion) {
    let mut group = c.benchmark_group("centralized_oracles");
    for &sessions in &[100usize, 500, 2_000] {
        let (network, set) = session_set(sessions);
        group.bench_with_input(
            BenchmarkId::new("centralized_bneck", sessions),
            &set,
            |b, set| {
                b.iter(|| CentralizedBneck::new(&network, set).solve());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("water_filling", sessions),
            &set,
            |b, set| {
                b.iter(|| WaterFilling::new(&network, set).solve());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_oracles);
criterion_main!(benches);
