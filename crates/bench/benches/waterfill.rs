//! Criterion benchmark of the centralized oracles (Water-Filling and
//! Centralized B-Neck, Figure 1 of the paper), which every experiment uses for
//! validation: cost of solving the max-min allocation as the number of
//! sessions grows.

use bneck_maxmin::prelude::*;
use bneck_net::DelayModel;
use bneck_workload::{LimitPolicy, NetworkScenario, SessionPlanner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn session_set(sessions: usize) -> (bneck_net::Network, SessionSet) {
    let scenario = NetworkScenario {
        size: bneck_net::NetworkSize::Small,
        delay_model: DelayModel::Lan,
        hosts: 2 * sessions,
        seed: 3,
    };
    let network = scenario.build();
    let mut planner = SessionPlanner::new(&network, 17);
    let requests = planner.plan(
        sessions,
        LimitPolicy::RandomFinite {
            probability: 0.2,
            min_bps: 1e6,
            max_bps: 80e6,
        },
    );
    let mut router = Router::new(&network);
    let set: SessionSet = requests
        .iter()
        .filter_map(|r| {
            let path = router.shortest_path(r.source, r.destination)?;
            Some(Session::new(r.session, path, r.limit))
        })
        .collect();
    (network, set)
}

use bneck_net::prelude::*;

fn bench_oracles(c: &mut Criterion) {
    let mut group = c.benchmark_group("centralized_oracles");
    for &sessions in &[100usize, 500, 2_000] {
        let (network, set) = session_set(sessions);
        group.bench_with_input(
            BenchmarkId::new("centralized_bneck", sessions),
            &set,
            |b, set| {
                b.iter(|| CentralizedBneck::new(&network, set).solve());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("water_filling", sessions),
            &set,
            |b, set| {
                b.iter(|| WaterFilling::new(&network, set).solve());
            },
        );
    }
    // The production call pattern for repeated solves (validate binary,
    // experiment runners): scratch reused across calls via a workspace.
    let (network, set) = session_set(2_000);
    let mut ws = SolverWorkspace::new();
    group.bench_with_input(
        BenchmarkId::new("centralized_bneck_reuse", 2_000),
        &set,
        |b, set| {
            b.iter(|| CentralizedBneck::new(&network, set).solve_in(&mut ws));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("water_filling_reuse", 2_000),
        &set,
        |b, set| {
            b.iter(|| WaterFilling::new(&network, set).solve_in(&mut ws));
        },
    );
    group.finish();
}

/// A parking-lot chain tuned so that progressive filling freezes exactly one
/// session per round: strictly increasing segment capacities mean every round
/// saturates the single next-tightest segment. This is the adversarial case
/// for the freeze loop, which used to be O(active²) per round.
fn chain_instance(segments: usize) -> (bneck_net::Network, SessionSet) {
    let us = Delay::from_micros(1);
    let access = Capacity::from_mbps(100_000.0);
    let mut b = NetworkBuilder::new();
    let routers: Vec<_> = (0..=segments)
        .map(|i| b.add_router(format!("r{i}")))
        .collect();
    for i in 0..segments {
        // 20, 21, 22, ... Mbps: every segment saturates in its own round.
        b.connect(
            routers[i],
            routers[i + 1],
            Capacity::from_mbps(20.0 + i as f64),
            us,
        );
    }
    let hosts: Vec<_> = (0..=segments)
        .map(|i| b.add_host(format!("h{i}"), routers[i], access, us))
        .collect();
    let network = b.build();
    let mut router = Router::new(&network);
    let mut set = SessionSet::new();
    let long = router.shortest_path(hosts[0], hosts[segments]).unwrap();
    set.insert(Session::new(SessionId(0), long, RateLimit::unlimited()));
    for i in 0..segments {
        let short = router.shortest_path(hosts[i], hosts[i + 1]).unwrap();
        set.insert(Session::new(
            SessionId(1 + i as u64),
            short,
            RateLimit::unlimited(),
        ));
    }
    (network, set)
}

fn bench_worst_case_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("waterfill");
    for &segments in &[64usize, 256] {
        let (network, set) = chain_instance(segments);
        let mut ws = SolverWorkspace::new();
        group.bench_with_input(
            BenchmarkId::new("worst_case_chain", segments),
            &set,
            |b, set| {
                b.iter(|| WaterFilling::new(&network, set).solve_in(&mut ws));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_oracles, bench_worst_case_chain);
criterion_main!(benches);
