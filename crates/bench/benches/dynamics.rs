//! Criterion benchmark behind Figure 6 (Experiment 2): cost of running the
//! five-phase churn workload (join / leave / change / join / mixed) to
//! quiescence.

use bneck_bench::run_experiment2;
use bneck_workload::{Experiment2Config, NetworkScenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_dynamics(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment2_dynamics");
    group.sample_size(10);
    for &initial in &[50usize, 150] {
        group.bench_with_input(
            BenchmarkId::new("five_phases", initial),
            &initial,
            |b, &initial| {
                let config = Experiment2Config {
                    scenario: NetworkScenario::small_lan(3 * initial),
                    initial_sessions: initial,
                    churn: initial / 5,
                    ..Experiment2Config::scaled()
                };
                b.iter(|| {
                    let (phases, series) = run_experiment2(&config);
                    assert!(phases.iter().all(|p| p.validated));
                    series.total()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dynamics);
criterion_main!(benches);
