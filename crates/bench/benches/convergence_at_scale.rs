//! Criterion benchmark for the paper-scale flavour of Experiment 1: the
//! distributed protocol driven to quiescence on the Medium transit–stub
//! network with thousands of simultaneous joins (the `paper_scale` binary
//! runs the full 50k–100k-session presets; the benchmark sizes here keep one
//! iteration within CI's bench-smoke budget).

use bneck_bench::run_experiment1_point;
use bneck_workload::Experiment1Config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_convergence_at_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence_at_scale");
    group.sample_size(10);
    for &sessions in &[1_000usize, 5_000] {
        group.bench_with_input(
            BenchmarkId::new("paper_scale", sessions),
            &sessions,
            |b, &sessions| {
                let config = Experiment1Config::paper_scale(sessions);
                b.iter(|| {
                    let point = run_experiment1_point(&config);
                    assert!(point.validated);
                    point.total_packets
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_convergence_at_scale);
criterion_main!(benches);
