//! Criterion benchmark of the evaluation substrate itself: generating the
//! transit–stub topologies of Section IV and routing sessions across them.

use bneck_net::prelude::*;
use bneck_net::topology::transit_stub::paper_network;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_generation");
    group.sample_size(10);
    for (label, size, hosts) in [
        ("small", NetworkSize::Small, 1_000usize),
        ("medium", NetworkSize::Medium, 5_000),
    ] {
        group.bench_function(BenchmarkId::new("generate", label), |b| {
            b.iter(|| {
                let net = paper_network(size, hosts, DelayModel::Wan, 7);
                assert_eq!(net.router_count(), size.router_count());
                net.link_count()
            });
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("shortest_path_routing");
    let net = paper_network(NetworkSize::Medium, 2_000, DelayModel::Lan, 7);
    let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
    group.bench_function("medium_1000_paths", |b| {
        b.iter(|| {
            let mut router = Router::new(&net);
            let mut total_hops = 0usize;
            for i in 0..1_000 {
                let src = hosts[i % hosts.len()];
                let dst = hosts[(i * 7 + 13) % hosts.len()];
                if src == dst {
                    continue;
                }
                if let Some(path) = router.shortest_path(src, dst) {
                    total_hops += path.hop_count();
                }
            }
            total_hops
        });
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_routing);
criterion_main!(benches);
