//! Criterion benchmark behind Figure 5 (Experiment 1): wall-clock cost of
//! driving the distributed B-Neck protocol to quiescence as the number of
//! simultaneously joining sessions grows, on Small LAN and WAN networks.

use bneck_bench::run_experiment1_point;
use bneck_workload::{Experiment1Config, NetworkScenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment1_convergence");
    group.sample_size(10);
    for &sessions in &[10usize, 50, 200] {
        for (label, scenario) in [
            (
                "small_lan",
                NetworkScenario::small_lan(2 * sessions.max(10)),
            ),
            (
                "small_wan",
                NetworkScenario::small_wan(2 * sessions.max(10)),
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, sessions),
                &sessions,
                |b, &sessions| {
                    let config = Experiment1Config::scaled(scenario, sessions);
                    b.iter(|| {
                        let point = run_experiment1_point(&config);
                        assert!(point.validated);
                        point.total_packets
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
