//! Criterion benchmark behind Figure 5 (Experiment 1): wall-clock cost of
//! driving the distributed B-Neck protocol to quiescence as the number of
//! simultaneously joining sessions grows, on Small LAN and WAN networks.
//!
//! Two variants per point: the original end-to-end cells (topology build,
//! planning, protocol run and oracle check all inside the measurement) and
//! `_proto`-suffixed cells that hoist everything except the protocol run out
//! of `b.iter`, so regressions in the engine hot path are not diluted by
//! setup cost.

use bneck_bench::run_experiment1_point;
use bneck_core::{BneckConfig, BneckSimulation};
use bneck_maxmin::{compare_allocations, CentralizedBneck, Tolerance};
use bneck_workload::{Experiment1Config, NetworkScenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment1_convergence");
    group.sample_size(10);
    for &sessions in &[10usize, 50, 200] {
        for (label, scenario) in [
            (
                "small_lan",
                NetworkScenario::small_lan(2 * sessions.max(10)),
            ),
            (
                "small_wan",
                NetworkScenario::small_wan(2 * sessions.max(10)),
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, sessions),
                &sessions,
                |b, &sessions| {
                    let config = Experiment1Config::scaled(scenario, sessions);
                    b.iter(|| {
                        let point = run_experiment1_point(&config);
                        assert!(point.validated);
                        point.total_packets
                    });
                },
            );
        }
    }
    group.finish();
}

/// The `_proto` variants: topology, schedule and oracle are built once per
/// cell; only the protocol simulation (schedule application, run to
/// quiescence, oracle comparison) is measured.
fn bench_convergence_proto(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment1_convergence");
    group.sample_size(10);
    for &sessions in &[10usize, 50, 200] {
        for (label, scenario) in [
            (
                "small_lan_proto",
                NetworkScenario::small_lan(2 * sessions.max(10)),
            ),
            (
                "small_wan_proto",
                NetworkScenario::small_wan(2 * sessions.max(10)),
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, sessions),
                &sessions,
                |b, &sessions| {
                    let config = Experiment1Config::scaled(scenario, sessions);
                    let network = config.scenario.build();
                    let schedule = config.schedule(&network);
                    // The oracle of the joined sessions, solved once: a
                    // bookkeeping-only pass yields the session set.
                    let mut reference = BneckSimulation::new(&network, BneckConfig::default());
                    schedule.apply(&mut reference);
                    let session_set = reference.session_set();
                    let oracle = CentralizedBneck::new(&network, &session_set).solve();
                    b.iter(|| {
                        let mut sim = BneckSimulation::new(&network, BneckConfig::default());
                        schedule.apply(&mut sim);
                        let report = sim.run_to_quiescence();
                        assert!(report.quiescent);
                        let sessions = sim.session_set();
                        assert!(compare_allocations(
                            &sessions,
                            &sim.allocation(),
                            &oracle,
                            Tolerance::new(1e-6, 10.0),
                        )
                        .is_ok());
                        report.packets_sent
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_convergence, bench_convergence_proto);
criterion_main!(benches);
