//! Experiment 2 (Figure 6): behaviour of B-Neck under a highly dynamic
//! system — five phases of joins, leaves and rate changes.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bneck-bench --bin experiment2 [-- --full] [-- --repeats 4]
//! ```
//!
//! The default is a scaled-down version of the paper's workload (which uses
//! 100,000 initial sessions and 20,000-session churn phases on a Medium LAN
//! network); `--full` runs the paper's parameters. `--repeats N` runs N
//! independent repetitions (seeds `base + repeat index`) fanned across
//! worker threads by the parallel sweep driver (`BNECK_THREADS` pins the
//! thread count; reports are bit-identical at any count).

use bneck_bench::{run_experiment2_repeats, SweepRunner};
use bneck_core::PacketKind;
use bneck_metrics::Table;
use bneck_workload::Experiment2Config;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let repeats = args
        .iter()
        .position(|a| a == "--repeats")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--repeats takes an integer"))
        .unwrap_or(1);
    let config = if full {
        Experiment2Config::paper()
    } else {
        Experiment2Config::scaled()
    };

    let runner = SweepRunner::from_env();
    eprintln!(
        "[experiment2] scenario={} initial_sessions={} churn={} repeats={} threads={}",
        config.scenario.label(),
        config.initial_sessions,
        config.churn,
        repeats,
        runner.threads()
    );
    let runs = run_experiment2_repeats(&config, repeats, &runner);

    let mut summary = Table::new(
        "figure-6 (summary): per-phase convergence (Experiment 2)",
        &[
            "seed",
            "phase",
            "started_at_us",
            "time_to_quiescence_us",
            "active_sessions",
            "packets",
            "validated",
        ],
    );
    for run in &runs {
        for phase in &run.phases {
            summary.add_row(&[
                run.seed.to_string(),
                phase.name.to_string(),
                phase.started_at_us.to_string(),
                phase.time_to_quiescence_us.to_string(),
                phase.active_sessions.to_string(),
                phase.packets.total().to_string(),
                phase.validated.to_string(),
            ]);
        }
    }
    println!("{summary}");

    // The traffic time series of the first repeat (the figure in the paper
    // shows one run).
    let mut traffic = Table::new(
        "figure-6: packets per 5 ms interval, by type (Experiment 2)",
        &[
            "interval_start_ms",
            "Join",
            "Probe",
            "Response",
            "Update",
            "Bottleneck",
            "SetBottleneck",
            "Leave",
            "total",
        ],
    );
    if let Some(first) = runs.first() {
        for (start, stats) in first.series.iter() {
            traffic.add_row(&[
                start.as_millis().to_string(),
                stats.count(PacketKind::Join).to_string(),
                stats.count(PacketKind::Probe).to_string(),
                stats.count(PacketKind::Response).to_string(),
                stats.count(PacketKind::Update).to_string(),
                stats.count(PacketKind::Bottleneck).to_string(),
                stats.count(PacketKind::SetBottleneck).to_string(),
                stats.count(PacketKind::Leave).to_string(),
                stats.total().to_string(),
            ]);
        }
    }
    println!("{traffic}");
    println!("{}", summary.to_csv());
    println!("{}", traffic.to_csv());
}
