//! Experiment 1 (Figure 5): time to quiescence and control traffic as a
//! function of the number of sessions joining simultaneously.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bneck-bench --bin experiment1 [-- --full] [-- --sessions 10,100,1000]
//! ```
//!
//! By default a scaled-down sweep is run on the Small LAN, Small WAN and
//! Medium LAN scenarios; `--full` switches to the paper's sweep (10 to
//! 300,000 sessions on Small/Medium/Big networks), which takes hours and lots
//! of memory.
//!
//! The (scenario, session-count) points are independent simulations fanned
//! across worker threads by the parallel sweep driver; set `BNECK_THREADS`
//! to pin the thread count. Reports are bit-identical at any thread count
//! (each point's seed derives from its position in the sweep).

use bneck_bench::{run_experiment1_sweep, SweepRunner};
use bneck_metrics::Table;
use bneck_workload::{Experiment1Config, NetworkScenario};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let sessions_override = args
        .iter()
        .position(|a| a == "--sessions")
        .and_then(|i| args.get(i + 1))
        .map(|list| {
            list.split(',')
                .map(|s| {
                    s.trim()
                        .parse::<usize>()
                        .expect("--sessions takes a comma-separated list of integers")
                })
                .collect::<Vec<_>>()
        });

    let sweep = sessions_override.unwrap_or_else(|| {
        if full {
            Experiment1Config::paper_sweep()
        } else {
            Experiment1Config::scaled_sweep()
        }
    });

    let scenarios: Vec<fn(usize) -> NetworkScenario> = if full {
        vec![
            NetworkScenario::small_lan,
            NetworkScenario::small_wan,
            NetworkScenario::medium_lan,
            NetworkScenario::medium_wan,
            NetworkScenario::big_lan,
        ]
    } else {
        vec![
            NetworkScenario::small_lan,
            NetworkScenario::small_wan,
            NetworkScenario::medium_lan,
        ]
    };

    // One config per (scenario, session count) cell; the seed derives from
    // the point's position in the sweep, so any thread count reproduces the
    // same reports.
    let mut configs = Vec::with_capacity(scenarios.len() * sweep.len());
    for make_scenario in &scenarios {
        for &sessions in &sweep {
            // One source host per session plus room for destinations.
            let hosts = (2 * sessions).max(20);
            let mut config = Experiment1Config::scaled(make_scenario(hosts), sessions);
            config.seed = configs.len() as u64 + 1;
            configs.push(config);
        }
    }

    let runner = SweepRunner::from_env();
    eprintln!(
        "[experiment1] {} points on {} worker thread(s)",
        configs.len(),
        runner.threads()
    );
    let points = run_experiment1_sweep(configs, &runner);

    let mut left = Table::new(
        "figure-5-left: time until quiescence (Experiment 1)",
        &["scenario", "sessions", "time_to_quiescence_us", "validated"],
    );
    let mut right = Table::new(
        "figure-5-right: packets transmitted (Experiment 1)",
        &[
            "scenario",
            "sessions",
            "total_packets",
            "packets_per_session",
        ],
    );

    for point in &points {
        eprintln!(
            "[experiment1] {} sessions={} quiescence={}us packets={} validated={}",
            point.scenario,
            point.sessions,
            point.time_to_quiescence_us,
            point.total_packets,
            point.validated
        );
        left.add_row(&[
            point.scenario.clone(),
            point.sessions.to_string(),
            point.time_to_quiescence_us.to_string(),
            point.validated.to_string(),
        ]);
        right.add_row(&[
            point.scenario.clone(),
            point.sessions.to_string(),
            point.total_packets.to_string(),
            format!("{:.1}", point.packets_per_session),
        ]);
    }

    println!("{left}");
    println!("{right}");
    println!("{}", left.to_csv());
    println!("{}", right.to_csv());
}
