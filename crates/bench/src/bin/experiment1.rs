//! DEPRECATED wrapper: `experiment1` forwards to `bneck run --preset exp1`.
//!
//! The former flags keep working: `--full` selects the paper-scale preset,
//! `--sessions a,b,c` overrides the sweep. This wrapper is kept for one
//! release so existing scripts do not break silently; use the `bneck` CLI
//! directly.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = if args.iter().any(|a| a == "--full") {
        "exp1_full"
    } else {
        "exp1"
    };
    eprintln!(
        "[experiment1] DEPRECATED: use `bneck run --preset {preset}` (this wrapper forwards \
         and will be removed in a future release)"
    );
    let mut forwarded = vec![
        "run".to_string(),
        "--preset".to_string(),
        preset.to_string(),
    ];
    if let Some(i) = args.iter().position(|a| a == "--sessions") {
        forwarded.push("--sessions".to_string());
        forwarded.extend(args.get(i + 1).cloned());
    }
    std::process::exit(bneck_bench::cli::run_main(&forwarded));
}
