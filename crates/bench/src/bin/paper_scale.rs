//! Paper-scale join-to-quiescence runs: tens to hundreds of thousands of
//! sessions joining a Medium transit–stub network within one millisecond,
//! driven to quiescence and validated against the centralized oracle
//! (the paper's 300,000-session evaluations, §IV).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bneck-bench --bin paper_scale \
//!     [-- --sessions 50000[,100000,...]] [-- --preset paper_full] [-- --no-validate]
//! ```
//!
//! `--preset paper_full` runs the full 300,000-session point of Figure 5.
//! `--sessions` takes a comma-separated list; the points are independent
//! runs fanned across worker threads by the parallel sweep driver
//! (`BNECK_THREADS` pins the thread count — CI's `scale-smoke` job uses it —
//! and the reports are bit-identical at any count). Each point prints one
//! summary line with wall-clock timings; the binary exits non-zero when any
//! run fails to reach quiescence or disagrees with the oracle.

use bneck_bench::SweepRunner;
use bneck_core::prelude::*;
use bneck_maxmin::prelude::*;
use bneck_workload::prelude::*;
use std::time::Instant;

/// The outcome of one paper-scale point.
struct ScaleRun {
    sessions: usize,
    summary: String,
    detail: String,
    ok: bool,
}

fn run_point(sessions: usize, validate: bool) -> ScaleRun {
    // `--preset paper_full` is sugar for 300k sessions: `paper_full()` is
    // exactly `paper_scale(300_000)`, so every point goes through one path.
    let config = Experiment1Config::paper_scale(sessions);
    let t0 = Instant::now();
    let network = config.scenario.build();
    let t_build = t0.elapsed();
    let mut detail = format!(
        "[paper_scale] network: {} routers, {} hosts, {} links ({:.2?})\n",
        network.router_count(),
        network.host_count(),
        network.link_count(),
        t_build
    );

    let t1 = Instant::now();
    let schedule = config.schedule(&network);
    let t_plan = t1.elapsed();

    let mut sim = BneckSimulation::new(&network, BneckConfig::default());
    let t2 = Instant::now();
    let stats = schedule.apply(&mut sim);
    let report = sim.run_to_quiescence();
    let t_run = t2.elapsed();
    detail.push_str(&format!(
        "[paper_scale] {} joins applied, quiescent={} at {}us after {} events / {} packets ({:.2?})",
        stats.joins,
        report.quiescent,
        report.quiescent_at.as_micros(),
        report.events_processed,
        report.packets_sent,
        t_run
    ));

    let mut ok = report.quiescent && stats.joins == sessions;
    let mut mismatches = 0usize;
    let mut t_oracle = std::time::Duration::ZERO;
    if validate {
        let t3 = Instant::now();
        let session_set = sim.session_set();
        let oracle = CentralizedBneck::new(&network, &session_set).solve();
        mismatches = compare_allocations(
            &session_set,
            &sim.allocation(),
            &oracle,
            Tolerance::new(1e-6, 10.0),
        )
        .err()
        .map(|v| v.len())
        .unwrap_or(0);
        t_oracle = t3.elapsed();
        ok &= mismatches == 0;
    }

    let summary = format!(
        "paper_scale sessions={} quiescent={} quiescent_at_us={} events={} packets={} \
         packets_per_session={:.1} mismatches={} build_s={:.3} plan_s={:.3} run_s={:.3} \
         oracle_s={:.3} total_s={:.3}",
        sessions,
        report.quiescent,
        report.quiescent_at.as_micros(),
        report.events_processed,
        report.packets_sent,
        report.packets_sent as f64 / sessions.max(1) as f64,
        mismatches,
        t_build.as_secs_f64(),
        t_plan.as_secs_f64(),
        t_run.as_secs_f64(),
        t_oracle.as_secs_f64(),
        t0.elapsed().as_secs_f64(),
    );
    ScaleRun {
        sessions,
        summary,
        detail,
        ok,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset_full = args
        .iter()
        .position(|a| a == "--preset")
        .and_then(|i| args.get(i + 1))
        .map(|p| match p.as_str() {
            "paper_full" => true,
            other => panic!("unknown preset {other}; expected paper_full"),
        })
        .unwrap_or(false);
    let sessions_list: Vec<usize> = args
        .iter()
        .position(|a| a == "--sessions")
        .and_then(|i| args.get(i + 1))
        .map(|list| {
            list.split(',')
                .map(|s| {
                    s.trim()
                        .parse::<usize>()
                        .expect("--sessions takes a comma-separated list of integers")
                })
                .collect()
        })
        .unwrap_or_else(|| {
            if preset_full {
                vec![300_000]
            } else {
                vec![50_000]
            }
        });
    let validate = !args.iter().any(|a| a == "--no-validate");

    let runner = SweepRunner::from_env();
    eprintln!(
        "[paper_scale] {} point(s) {:?} on {} worker thread(s)",
        sessions_list.len(),
        sessions_list,
        runner.threads()
    );
    let runs = runner.run(sessions_list, |_, sessions| run_point(sessions, validate));

    let mut all_ok = true;
    for run in &runs {
        eprintln!("{}", run.detail);
        println!("{}", run.summary);
        if !run.ok {
            eprintln!(
                "[paper_scale] FAILED at {} sessions (non-quiescent or oracle mismatch)",
                run.sessions
            );
            all_ok = false;
        }
    }
    if !all_ok {
        std::process::exit(1);
    }
}
