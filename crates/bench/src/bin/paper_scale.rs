//! Paper-scale join-to-quiescence run: tens of thousands of sessions joining
//! a Medium transit–stub network within one millisecond, driven to
//! quiescence and validated against the centralized oracle (toward the
//! paper's 300,000-session evaluations, §IV).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bneck-bench --bin paper_scale [-- --sessions 50000] [-- --no-validate]
//! ```
//!
//! Prints one summary line with wall-clock timings; exits non-zero when the
//! run fails to reach quiescence or disagrees with the oracle. The CI
//! `scale-smoke` job runs this binary under a wall-clock budget.

use bneck_core::prelude::*;
use bneck_maxmin::prelude::*;
use bneck_workload::prelude::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sessions = args
        .iter()
        .position(|a| a == "--sessions")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse::<usize>().expect("--sessions takes an integer"))
        .unwrap_or(50_000);
    let validate = !args.iter().any(|a| a == "--no-validate");

    let config = Experiment1Config::paper_scale(sessions);
    let t0 = Instant::now();
    let network = config.scenario.build();
    let t_build = t0.elapsed();
    eprintln!(
        "[paper_scale] network: {} routers, {} hosts, {} links ({:.2?})",
        network.router_count(),
        network.host_count(),
        network.link_count(),
        t_build
    );

    let t1 = Instant::now();
    let schedule = config.schedule(&network);
    let t_plan = t1.elapsed();

    let mut sim = BneckSimulation::new(&network, BneckConfig::default());
    let t2 = Instant::now();
    let stats = schedule.apply(&mut sim);
    let report = sim.run_to_quiescence();
    let t_run = t2.elapsed();
    eprintln!(
        "[paper_scale] {} joins applied, quiescent={} at {}us after {} events / {} packets ({:.2?})",
        stats.joins,
        report.quiescent,
        report.quiescent_at.as_micros(),
        report.events_processed,
        report.packets_sent,
        t_run
    );

    let mut ok = report.quiescent && stats.joins == sessions;
    let mut mismatches = 0usize;
    let mut t_oracle = std::time::Duration::ZERO;
    if validate {
        let t3 = Instant::now();
        let session_set = sim.session_set();
        let oracle = CentralizedBneck::new(&network, &session_set).solve();
        mismatches = compare_allocations(
            &session_set,
            &sim.allocation(),
            &oracle,
            Tolerance::new(1e-6, 10.0),
        )
        .err()
        .map(|v| v.len())
        .unwrap_or(0);
        t_oracle = t3.elapsed();
        ok &= mismatches == 0;
    }

    println!(
        "paper_scale sessions={} quiescent={} quiescent_at_us={} events={} packets={} \
         packets_per_session={:.1} mismatches={} build_s={:.3} plan_s={:.3} run_s={:.3} \
         oracle_s={:.3} total_s={:.3}",
        sessions,
        report.quiescent,
        report.quiescent_at.as_micros(),
        report.events_processed,
        report.packets_sent,
        report.packets_sent as f64 / sessions.max(1) as f64,
        mismatches,
        t_build.as_secs_f64(),
        t_plan.as_secs_f64(),
        t_run.as_secs_f64(),
        t_oracle.as_secs_f64(),
        t0.elapsed().as_secs_f64(),
    );
    if !ok {
        eprintln!("[paper_scale] FAILED (quiescent={report:?}, mismatches={mismatches})");
        std::process::exit(1);
    }
}
