//! Experiment 3 (Figures 7 and 8): accuracy and control traffic of B-Neck
//! against the non-quiescent baselines (BFYZ, CG, RCP) over time.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bneck-bench --bin experiment3 [-- --full] [-- --baselines BFYZ,CG,RCP]
//! ```
//!
//! By default the scaled-down workload is run against BFYZ only (as in the
//! paper's figures; CG and RCP are reported in the paper as not converging for
//! more than 500 sessions — pass `--baselines BFYZ,CG,RCP` to include them).
//!
//! Every protocol runs behind the unified `ProtocolWorld` trait; the
//! protocol cells are independent simulations fanned across worker threads
//! by the parallel sweep driver (`BNECK_THREADS` pins the thread count;
//! reports are bit-identical at any count).

use bneck_bench::{run_experiment3_with, SweepRunner};
use bneck_metrics::Table;
use bneck_workload::Experiment3Config;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let baselines: Vec<String> = args
        .iter()
        .position(|a| a == "--baselines")
        .and_then(|i| args.get(i + 1))
        .map(|list| list.split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or_else(|| vec!["BFYZ".to_string()]);
    let baseline_refs: Vec<&str> = baselines.iter().map(String::as_str).collect();

    let config = if full {
        Experiment3Config::paper()
    } else {
        Experiment3Config::scaled()
    };
    let runner = SweepRunner::from_env();
    eprintln!(
        "[experiment3] scenario={} joins={} leaves={} baselines={:?} threads={}",
        config.scenario.label(),
        config.joins,
        config.leaves,
        baselines,
        runner.threads()
    );

    let results = run_experiment3_with(&config, &baseline_refs, &runner);

    let mut sources = Table::new(
        "figure-7-left: relative error at the sources, percent (Experiment 3)",
        &["protocol", "time_us", "p10", "median", "mean", "p90"],
    );
    let mut links = Table::new(
        "figure-7-right: relative error on bottleneck links, percent (Experiment 3)",
        &["protocol", "time_us", "p10", "median", "mean", "p90"],
    );
    let mut packets = Table::new(
        "figure-8: packets transmitted per interval (Experiment 3)",
        &["protocol", "time_us", "packets_in_interval"],
    );

    for result in &results {
        for sample in &result.samples {
            sources.add_row(&[
                result.protocol.clone(),
                sample.at_us.to_string(),
                format!("{:.2}", sample.source_error.p10),
                format!("{:.2}", sample.source_error.median),
                format!("{:.2}", sample.source_error.mean),
                format!("{:.2}", sample.source_error.p90),
            ]);
            links.add_row(&[
                result.protocol.clone(),
                sample.at_us.to_string(),
                format!("{:.2}", sample.link_error.p10),
                format!("{:.2}", sample.link_error.median),
                format!("{:.2}", sample.link_error.mean),
                format!("{:.2}", sample.link_error.p90),
            ]);
            packets.add_row(&[
                result.protocol.clone(),
                sample.at_us.to_string(),
                sample.packets_in_interval.to_string(),
            ]);
        }
        match result.quiescent_at_us {
            Some(t) => eprintln!(
                "[experiment3] {} became quiescent at {} us after {} packets",
                result.protocol, t, result.total_packets
            ),
            None => eprintln!(
                "[experiment3] {} never became quiescent ({} packets over the horizon)",
                result.protocol, result.total_packets
            ),
        }
    }

    println!("{sources}");
    println!("{links}");
    println!("{packets}");
    println!("{}", sources.to_csv());
    println!("{}", links.to_csv());
    println!("{}", packets.to_csv());
}
