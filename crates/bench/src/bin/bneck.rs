//! The one `bneck` CLI: drives every paper experiment from a declarative
//! spec. See `bneck help` (or `crate::cli`) for the subcommands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(bneck_bench::cli::run_main(&args));
}
