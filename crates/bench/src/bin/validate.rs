//! Validation harness: runs randomized workloads on all scenario flavours and
//! cross-checks the distributed B-Neck rates against the centralized oracle,
//! reproducing the validation methodology of Section IV of the paper ("every
//! B-Neck execution result has been successfully validated against the result
//! obtained when executing the centralized version with the same input data").
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bneck-bench --bin validate [-- --runs 5] [-- --sessions 100]
//! ```
//!
//! The (scenario, seed) runs are independent and fanned across worker
//! threads by the parallel sweep driver (`BNECK_THREADS` pins the thread
//! count; the report is bit-identical at any count).

use bneck_bench::{run_validation_sweep, SweepRunner, ValidationPoint};
use bneck_metrics::Table;
use bneck_workload::NetworkScenario;

fn arg_value(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("argument must be an integer"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let runs = arg_value(&args, "--runs").unwrap_or(3);
    let sessions = arg_value(&args, "--sessions").unwrap_or(60);

    let scenarios = [
        NetworkScenario::small_lan(2 * sessions),
        NetworkScenario::small_wan(2 * sessions),
        NetworkScenario::medium_lan(2 * sessions),
        NetworkScenario::medium_wan(2 * sessions),
    ];

    let mut points = Vec::with_capacity(scenarios.len() * runs);
    for scenario in &scenarios {
        for seed in 0..runs as u64 {
            points.push(ValidationPoint {
                scenario: scenario.with_seed(seed + 1),
                sessions,
                seed: seed + 100,
            });
        }
    }

    let runner = SweepRunner::from_env();
    eprintln!(
        "[validate] {} runs on {} worker thread(s)",
        points.len(),
        runner.threads()
    );
    let topo_seeds: Vec<u64> = points.iter().map(|p| p.scenario.seed).collect();
    let reports = run_validation_sweep(points, &runner);

    let mut table = Table::new(
        "validation: distributed B-Neck vs centralized oracle",
        &[
            "scenario",
            "seed",
            "sessions",
            "time_to_quiescence_us",
            "mismatches",
            "violations",
        ],
    );
    let mut failures = 0usize;
    for (seed, report) in topo_seeds.iter().zip(&reports) {
        failures += report.mismatches + report.violations;
        table.add_row(&[
            report.scenario.clone(),
            seed.to_string(),
            report.sessions.to_string(),
            report.time_to_quiescence_us.to_string(),
            report.mismatches.to_string(),
            report.violations.to_string(),
        ]);
    }
    println!("{table}");
    if failures == 0 {
        println!("all runs converged to the exact max-min fair rates");
    } else {
        println!("FAILURES: {failures} mismatching sessions or violated conditions");
        std::process::exit(1);
    }
}
