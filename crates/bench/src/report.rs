//! Spec execution and machine-readable reports.
//!
//! [`run_spec`] is the single entry point the `bneck` CLI (and any embedding
//! driver) uses to execute a declarative
//! [`ExperimentSpec`](bneck_workload::spec::ExperimentSpec): it lowers the
//! spec through the registries, fans the resulting points across the
//! [`SweepRunner`]'s worker threads, and returns one [`ExperimentReport`] —
//! a typed, serializable wrapper over the per-experiment result structs of
//! [`crate::runner`]. Reports depend only on the spec (every point's RNG
//! seed is part of the lowered configuration), so they are bit-identical at
//! any `BNECK_THREADS` and identical to what the former per-experiment
//! binaries computed.
//!
//! [`render_tables`] renders a report into the same text tables those
//! binaries printed, keeping the human-readable output next to the JSON.

use crate::runner::{
    fault_point_configs, run_experiment1_sweep, run_experiment2_repeats, run_experiment3_registry,
    run_fault_sweep, run_scale_sweep, run_validation_sweep, Experiment1Point, Experiment2Run,
    Experiment3Result, FaultPointReport, ScaleReport, ScaleTimings, ValidationPoint,
    ValidationReport,
};
use crate::sweep::SweepRunner;
use bneck_core::PacketKind;
use bneck_metrics::Table;
use bneck_workload::registry::{ProtocolRegistry, TopologyRegistry};
use bneck_workload::spec::{ExperimentKind, ExperimentSpec, SpecError};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// The typed outcome of one [`ExperimentSpec`] run: the same result structs
/// the per-experiment runners produce, tagged by experiment kind.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum ExperimentReport {
    /// Experiment 1 points (Figure 5).
    Joins(Vec<Experiment1Point>),
    /// Experiment 2 repeats (Figure 6).
    Churn(Vec<Experiment2Run>),
    /// Experiment 3 per-protocol results (Figures 7 and 8).
    Accuracy(Vec<Experiment3Result>),
    /// §IV validation reports.
    Validation(Vec<ValidationReport>),
    /// Paper-scale run reports.
    Scale(Vec<ScaleReport>),
    /// Fault-sweep cell reports (raw vs recovery-enabled runs per cell).
    FaultSweep(Vec<FaultPointReport>),
}

impl ExperimentReport {
    /// Number of *failing* units in the report, mirroring the exit semantics
    /// of the former binaries: validation runs count oracle mismatches and
    /// max-min violations, scale runs count non-quiescent or mismatching
    /// points; the figure-producing experiments never fail (their `validated`
    /// flags are part of the data). Fault sweeps count cells whose
    /// recovery-enabled run did not converge — raw runs are honest records
    /// whose stuck/wrong-rates outcomes are the data, not failures.
    pub fn failures(&self) -> usize {
        match self {
            ExperimentReport::Validation(reports) => {
                reports.iter().map(|r| r.mismatches + r.violations).sum()
            }
            ExperimentReport::Scale(reports) => reports.iter().filter(|r| !r.ok()).count(),
            ExperimentReport::FaultSweep(reports) => reports.iter().filter(|r| !r.ok()).count(),
            _ => 0,
        }
    }
}

/// A finished spec run: the report plus human-oriented notes (per-point
/// timing details, quiescence announcements) that are not part of the
/// machine-readable report because they are not reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecOutcome {
    /// The deterministic, serializable report.
    pub report: ExperimentReport,
    /// Operator-facing progress/detail lines (printed to stderr by the CLI).
    pub notes: Vec<String>,
    /// Per-point wall-clock phase breakdowns — populated for scale specs
    /// (one entry per point, in report order), empty otherwise. Like
    /// `notes`, timings are machine-dependent and therefore live outside
    /// the report.
    pub timings: Vec<ScaleTimings>,
}

/// Runs a declarative experiment spec: checks it against the registries,
/// lowers it to the PR 4 experiment configurations, and fans the points
/// across the runner's worker threads.
///
/// # Errors
///
/// Returns the first [`SpecError`] if the spec does not resolve (unknown
/// topology/protocol names, empty sweeps). Never errors once the check
/// passes.
pub fn run_spec(
    spec: &ExperimentSpec,
    topologies: &TopologyRegistry,
    protocols: &ProtocolRegistry,
    runner: &SweepRunner,
) -> Result<SpecOutcome, SpecError> {
    spec.check(topologies, protocols)?;
    match &spec.experiment {
        ExperimentKind::Joins(joins) => {
            let configs = joins.configs(topologies)?;
            let points = run_experiment1_sweep(configs, runner);
            let notes = points
                .iter()
                .map(|p| {
                    format!(
                        "{} sessions={} quiescence={}us packets={} validated={}",
                        p.scenario,
                        p.sessions,
                        p.time_to_quiescence_us,
                        p.total_packets,
                        p.validated
                    )
                })
                .collect();
            Ok(SpecOutcome {
                report: ExperimentReport::Joins(points),
                notes,
                timings: Vec::new(),
            })
        }
        ExperimentKind::Churn(churn) => {
            let config = churn.config(topologies)?;
            let runs = run_experiment2_repeats(&config, churn.repeats, runner);
            Ok(SpecOutcome {
                report: ExperimentReport::Churn(runs),
                notes: Vec::new(),
                timings: Vec::new(),
            })
        }
        ExperimentKind::Accuracy(accuracy) => {
            let config = accuracy.config(topologies)?;
            let baseline_refs: Vec<&str> = accuracy.baselines.iter().map(String::as_str).collect();
            let results = run_experiment3_registry(&config, &baseline_refs, protocols, runner);
            let notes = results
                .iter()
                .map(|r| match r.quiescent_at_us {
                    Some(t) => format!(
                        "{} became quiescent at {} us after {} packets",
                        r.protocol, t, r.total_packets
                    ),
                    None => format!(
                        "{} never became quiescent ({} packets over the horizon)",
                        r.protocol, r.total_packets
                    ),
                })
                .collect();
            Ok(SpecOutcome {
                report: ExperimentReport::Accuracy(results),
                notes,
                timings: Vec::new(),
            })
        }
        ExperimentKind::Validation(validation) => {
            let points: Vec<ValidationPoint> = validation
                .runs(topologies)?
                .into_iter()
                .map(|run| ValidationPoint {
                    scenario: run.scenario,
                    sessions: run.sessions,
                    seed: run.seed,
                })
                .collect();
            let reports = run_validation_sweep(points, runner);
            Ok(SpecOutcome {
                report: ExperimentReport::Validation(reports),
                notes: Vec::new(),
                timings: Vec::new(),
            })
        }
        ExperimentKind::Scale(scale) => {
            let configs = scale.configs()?;
            let runs = run_scale_sweep(configs, scale.validate, &scale.shards, runner);
            let mut reports = Vec::with_capacity(runs.len());
            let mut notes = Vec::with_capacity(runs.len());
            let mut timings = Vec::with_capacity(runs.len());
            for run in runs {
                notes.push(run.detail);
                timings.push(run.timings);
                reports.push(run.report);
            }
            Ok(SpecOutcome {
                report: ExperimentReport::Scale(reports),
                notes,
                timings,
            })
        }
        ExperimentKind::FaultSweep(faults) => {
            let scenario = faults.topology.resolve(topologies)?;
            let configs = fault_point_configs(faults, scenario)?;
            let reports = run_fault_sweep(configs, runner);
            let notes = reports
                .iter()
                .map(|r| {
                    let mut line = format!(
                        "drop={} dup={} raw={} ({} faults over {} channels)",
                        r.drop,
                        r.duplicate,
                        r.raw.outcome.label(),
                        r.raw.faults.total(),
                        r.raw.channel_faults.len()
                    );
                    if let Some(rec) = &r.recovered {
                        let stats = rec.recovery.unwrap_or_default();
                        line.push_str(&format!(
                            " recovery={} at {}us ({} retransmits)",
                            rec.outcome.label(),
                            rec.quiescent_at_us,
                            stats.retransmits
                        ));
                    }
                    line
                })
                .collect();
            Ok(SpecOutcome {
                report: ExperimentReport::FaultSweep(reports),
                notes,
                timings: Vec::new(),
            })
        }
    }
}

/// Renders a report into the text tables the former per-experiment binaries
/// printed.
pub fn render_tables(report: &ExperimentReport) -> Vec<Table> {
    match report {
        ExperimentReport::Joins(points) => {
            let mut left = Table::new(
                "figure-5-left: time until quiescence (Experiment 1)",
                &["scenario", "sessions", "time_to_quiescence_us", "validated"],
            );
            let mut right = Table::new(
                "figure-5-right: packets transmitted (Experiment 1)",
                &[
                    "scenario",
                    "sessions",
                    "total_packets",
                    "packets_per_session",
                ],
            );
            for point in points {
                left.add_row(&[
                    point.scenario.clone(),
                    point.sessions.to_string(),
                    point.time_to_quiescence_us.to_string(),
                    point.validated.to_string(),
                ]);
                right.add_row(&[
                    point.scenario.clone(),
                    point.sessions.to_string(),
                    point.total_packets.to_string(),
                    format!("{:.1}", point.packets_per_session),
                ]);
            }
            vec![left, right]
        }
        ExperimentReport::Churn(runs) => {
            let mut summary = Table::new(
                "figure-6 (summary): per-phase convergence (Experiment 2)",
                &[
                    "seed",
                    "phase",
                    "started_at_us",
                    "time_to_quiescence_us",
                    "active_sessions",
                    "packets",
                    "validated",
                ],
            );
            for run in runs {
                for phase in &run.phases {
                    summary.add_row(&[
                        run.seed.to_string(),
                        phase.name.clone(),
                        phase.started_at_us.to_string(),
                        phase.time_to_quiescence_us.to_string(),
                        phase.active_sessions.to_string(),
                        phase.packets.total().to_string(),
                        phase.validated.to_string(),
                    ]);
                }
            }
            let mut traffic = Table::new(
                "figure-6: packets per 5 ms interval, by type (Experiment 2)",
                &[
                    "interval_start_ms",
                    "Join",
                    "Probe",
                    "Response",
                    "Update",
                    "Bottleneck",
                    "SetBottleneck",
                    "Leave",
                    "total",
                ],
            );
            // The traffic time series of the first repeat (the paper's figure
            // shows one run).
            if let Some(first) = runs.first() {
                for (start, stats) in first.series.iter() {
                    traffic.add_row(&[
                        start.as_millis().to_string(),
                        stats.count(PacketKind::Join).to_string(),
                        stats.count(PacketKind::Probe).to_string(),
                        stats.count(PacketKind::Response).to_string(),
                        stats.count(PacketKind::Update).to_string(),
                        stats.count(PacketKind::Bottleneck).to_string(),
                        stats.count(PacketKind::SetBottleneck).to_string(),
                        stats.count(PacketKind::Leave).to_string(),
                        stats.total().to_string(),
                    ]);
                }
            }
            vec![summary, traffic]
        }
        ExperimentReport::Accuracy(results) => {
            let mut sources = Table::new(
                "figure-7-left: relative error at the sources, percent (Experiment 3)",
                &["protocol", "time_us", "p10", "median", "mean", "p90"],
            );
            let mut links = Table::new(
                "figure-7-right: relative error on bottleneck links, percent (Experiment 3)",
                &["protocol", "time_us", "p10", "median", "mean", "p90"],
            );
            let mut packets = Table::new(
                "figure-8: packets transmitted per interval (Experiment 3)",
                &["protocol", "time_us", "packets_in_interval"],
            );
            for result in results {
                for sample in &result.samples {
                    sources.add_row(&[
                        result.protocol.clone(),
                        sample.at_us.to_string(),
                        format!("{:.2}", sample.source_error.p10),
                        format!("{:.2}", sample.source_error.median),
                        format!("{:.2}", sample.source_error.mean),
                        format!("{:.2}", sample.source_error.p90),
                    ]);
                    links.add_row(&[
                        result.protocol.clone(),
                        sample.at_us.to_string(),
                        format!("{:.2}", sample.link_error.p10),
                        format!("{:.2}", sample.link_error.median),
                        format!("{:.2}", sample.link_error.mean),
                        format!("{:.2}", sample.link_error.p90),
                    ]);
                    packets.add_row(&[
                        result.protocol.clone(),
                        sample.at_us.to_string(),
                        sample.packets_in_interval.to_string(),
                    ]);
                }
            }
            vec![sources, links, packets]
        }
        ExperimentReport::Validation(reports) => {
            let mut table = Table::new(
                "validation: distributed B-Neck vs centralized oracle",
                &[
                    "scenario",
                    "seed",
                    "sessions",
                    "time_to_quiescence_us",
                    "mismatches",
                    "violations",
                ],
            );
            for report in reports {
                table.add_row(&[
                    report.scenario.clone(),
                    report.topology_seed.to_string(),
                    report.sessions.to_string(),
                    report.time_to_quiescence_us.to_string(),
                    report.mismatches.to_string(),
                    report.violations.to_string(),
                ]);
            }
            vec![table]
        }
        ExperimentReport::Scale(reports) => {
            let mut table = Table::new(
                "paper-scale: join-to-quiescence runs",
                &[
                    "sessions",
                    "quiescent",
                    "quiescent_at_us",
                    "events",
                    "packets",
                    "packets_per_session",
                    "mismatches",
                    "ok",
                ],
            );
            for report in reports {
                table.add_row(&[
                    report.sessions.to_string(),
                    report.quiescent.to_string(),
                    report.quiescent_at_us.to_string(),
                    report.events_processed.to_string(),
                    report.packets_sent.to_string(),
                    format!("{:.1}", report.packets_per_session),
                    report
                        .mismatches
                        .map(|m| m.to_string())
                        .unwrap_or_else(|| "skipped".to_string()),
                    report.ok().to_string(),
                ]);
            }
            vec![table]
        }
        ExperimentReport::FaultSweep(reports) => {
            let mut table = Table::new(
                "fault sweep: raw protocol vs recovery layer on faulty channels",
                &[
                    "drop",
                    "duplicate",
                    "raw",
                    "raw_mismatches",
                    "dropped",
                    "duplicated",
                    "delayed",
                    "recovery",
                    "retransmits",
                    "recovery_quiescence_us",
                    "ok",
                ],
            );
            for report in reports {
                let (recovery, retransmits, quiescence) = match &report.recovered {
                    Some(run) => (
                        run.outcome.label().to_string(),
                        run.recovery.unwrap_or_default().retransmits.to_string(),
                        run.quiescent_at_us.to_string(),
                    ),
                    None => ("skipped".to_string(), "-".to_string(), "-".to_string()),
                };
                table.add_row(&[
                    format!("{:.3}", report.drop),
                    format!("{:.3}", report.duplicate),
                    report.raw.outcome.label().to_string(),
                    report.raw.mismatches.to_string(),
                    report.raw.faults.dropped.to_string(),
                    report.raw.faults.duplicated.to_string(),
                    report.raw.faults.delayed.to_string(),
                    recovery,
                    retransmits,
                    quiescence,
                    report.ok().to_string(),
                ]);
            }
            vec![table]
        }
    }
}
