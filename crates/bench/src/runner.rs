//! Experiment runners: one function per figure of the paper.

use bneck_baselines::prelude::*;
use bneck_core::prelude::*;
use bneck_maxmin::prelude::*;
use bneck_metrics::prelude::*;
use bneck_net::Delay;
use bneck_sim::SimTime;
use bneck_workload::prelude::*;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// One point of Figure 5: a session count on one scenario.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Experiment1Point {
    /// Scenario label (`small/lan`, `medium/wan`, …).
    pub scenario: String,
    /// Number of sessions that joined.
    pub sessions: usize,
    /// Time until quiescence, in microseconds (Figure 5, left).
    pub time_to_quiescence_us: u64,
    /// Total packets transmitted across all links (Figure 5, right).
    pub total_packets: u64,
    /// Average packets per session.
    pub packets_per_session: f64,
    /// `true` when the final rates match the centralized oracle.
    pub validated: bool,
}

/// Runs one point of Experiment 1: `config.sessions` sessions join within the
/// first millisecond; the run proceeds to quiescence and the resulting rates
/// are validated against the centralized oracle.
pub fn run_experiment1_point(config: &Experiment1Config) -> Experiment1Point {
    let network = config.scenario.build();
    let schedule = config.schedule(&network);
    let mut sim = BneckSimulation::new(&network, BneckConfig::default());
    let stats = schedule.apply(&mut sim);
    let report = sim.run_to_quiescence();
    let sessions = sim.session_set();
    let oracle = CentralizedBneck::new(&network, &sessions).solve();
    let validated = compare_allocations(
        &sessions,
        &sim.allocation(),
        &oracle,
        Tolerance::new(1e-6, 10.0),
    )
    .is_ok();
    let total_packets = sim.packet_stats().total();
    Experiment1Point {
        scenario: config.scenario.label(),
        sessions: stats.joins,
        time_to_quiescence_us: report.quiescent_at.as_micros(),
        total_packets,
        packets_per_session: if stats.joins > 0 {
            total_packets as f64 / stats.joins as f64
        } else {
            0.0
        },
        validated,
    }
}

/// One phase of Figure 6.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Experiment2PhaseResult {
    /// Phase name (`join`, `leave`, `change`, `join-2`, `mixed`).
    pub name: &'static str,
    /// Time the phase started at (when its churn was injected).
    pub started_at_us: u64,
    /// Time the network needed to become quiescent again, in microseconds.
    pub time_to_quiescence_us: u64,
    /// Number of sessions active once the phase settled.
    pub active_sessions: usize,
    /// Packets transmitted during the phase, by kind.
    pub packets: PacketStats,
    /// `true` when the rates after the phase match the centralized oracle.
    pub validated: bool,
}

/// Runs Experiment 2: five churn phases on one network; after each phase the
/// protocol runs to quiescence and is validated against the oracle.
///
/// Returns the per-phase results plus the packet time series (5 ms bins, as in
/// Figure 6) of the whole run.
pub fn run_experiment2(
    config: &Experiment2Config,
) -> (Vec<Experiment2PhaseResult>, PacketTimeSeries) {
    let network = config.scenario.build();
    let mut planner = config.planner(&network);
    let mut sim = BneckSimulation::new(&network, BneckConfig::default().with_packet_log());
    let mut results = Vec::new();
    // One workspace across the five per-phase oracle solves.
    let mut ws = SolverWorkspace::new();
    for phase in config.phases() {
        let start = if sim.now() == SimTime::ZERO {
            SimTime::ZERO
        } else {
            sim.now() + Delay::from_millis(1)
        };
        let schedule = planner.phase(
            start,
            config.change_window,
            phase.joins,
            phase.leaves,
            phase.changes,
            config.limits,
        );
        let before = *sim.packet_stats();
        schedule.apply(&mut sim);
        let report = sim.run_to_quiescence();
        let sessions = sim.session_set();
        let oracle = CentralizedBneck::new(&network, &sessions).solve_in(&mut ws);
        let validated = compare_allocations(
            &sessions,
            &sim.allocation(),
            &oracle,
            Tolerance::new(1e-6, 10.0),
        )
        .is_ok();
        results.push(Experiment2PhaseResult {
            name: phase.name,
            started_at_us: start.as_micros(),
            time_to_quiescence_us: report.quiescent_at.saturating_since(start).as_micros(),
            active_sessions: sessions.len(),
            packets: sim.packet_stats().since(&before),
            validated,
        });
    }
    let series = PacketTimeSeries::from_log(sim.packet_log(), Delay::from_millis(5));
    (results, series)
}

/// One sampling instant of Experiment 3, for one protocol.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Experiment3Sample {
    /// Sampling time in microseconds.
    pub at_us: u64,
    /// Relative error (in percent) of the assigned rates at the sources.
    pub source_error: Summary,
    /// Relative error (in percent) of the aggregate rates on bottleneck links.
    pub link_error: Summary,
    /// Packets transmitted since the previous sample.
    pub packets_in_interval: u64,
}

/// The outcome of Experiment 3 for one protocol.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Experiment3Result {
    /// Protocol name (`B-Neck`, `BFYZ`, `CG`, `RCP`).
    pub protocol: String,
    /// Samples every `sample_interval` until the horizon.
    pub samples: Vec<Experiment3Sample>,
    /// Total packets transmitted over the whole horizon.
    pub total_packets: u64,
    /// Time after which the protocol stopped sending packets entirely, if it
    /// did (only B-Neck does).
    pub quiescent_at_us: Option<u64>,
}

/// Runs Experiment 3 for B-Neck and the requested baselines on the same
/// workload: joins plus early leaves, then rate samples every
/// `config.sample_interval` until `config.horizon`, with the error measured
/// against the centralized max-min rates of the surviving sessions (Figures 7
/// and 8).
pub fn run_experiment3(config: &Experiment3Config, baselines: &[&str]) -> Vec<Experiment3Result> {
    let network = config.scenario.build();
    let schedule = config.schedule(&network);
    let sample_times = config.sample_times();

    // The reference allocation: the max-min fair rates of the sessions that
    // remain after the initial churn.
    let mut reference = BneckSimulation::new(&network, BneckConfig::default());
    schedule.apply(&mut reference);
    let final_sessions = reference.session_set();
    let solution = CentralizedBneck::new(&network, &final_sessions).solve_with_bottlenecks();

    let mut results = Vec::new();

    // B-Neck itself.
    {
        let mut sim = BneckSimulation::new(&network, BneckConfig::default());
        schedule.apply(&mut sim);
        let mut samples = Vec::new();
        let mut previous_packets = 0u64;
        let mut quiescent_at = None;
        for &at in &sample_times {
            let report = sim.run_until(at);
            if report.quiescent && quiescent_at.is_none() {
                quiescent_at = Some(report.quiescent_at.as_micros());
            }
            let assigned = sim.current_rates();
            let source_error = Summary::of(&rate_errors(&assigned, &solution.allocation));
            let link_error = Summary::of(&link_stress_errors(&assigned, &solution));
            let total = sim.packet_stats().total();
            samples.push(Experiment3Sample {
                at_us: at.as_micros(),
                source_error,
                link_error,
                packets_in_interval: total - previous_packets,
            });
            previous_packets = total;
        }
        results.push(Experiment3Result {
            protocol: "B-Neck".to_string(),
            samples,
            total_packets: sim.packet_stats().total(),
            quiescent_at_us: quiescent_at,
        });
    }

    for &name in baselines {
        let result = match name {
            "BFYZ" => run_baseline(
                &network,
                Bfyz::default(),
                &schedule,
                &sample_times,
                &solution,
            ),
            "CG" => run_baseline(
                &network,
                CobbGouda::default(),
                &schedule,
                &sample_times,
                &solution,
            ),
            "RCP" => run_baseline(
                &network,
                Rcp::default(),
                &schedule,
                &sample_times,
                &solution,
            ),
            other => panic!("unknown baseline {other}; expected BFYZ, CG or RCP"),
        };
        results.push(result);
    }
    results
}

fn run_baseline<P: BaselineProtocol>(
    network: &bneck_net::Network,
    protocol: P,
    schedule: &Schedule,
    sample_times: &[SimTime],
    solution: &CentralizedSolution,
) -> Experiment3Result {
    let name = protocol.name();
    let mut sim = BaselineSimulation::new(network, protocol, BaselineConfig::default());
    schedule.apply(&mut sim);
    let mut samples = Vec::new();
    let mut previous_packets = 0u64;
    for &at in sample_times {
        sim.run_until(at);
        let assigned = sim.current_rates();
        let source_error = Summary::of(&rate_errors(&assigned, &solution.allocation));
        let link_error = Summary::of(&link_stress_errors(&assigned, solution));
        let total = sim.stats().total();
        samples.push(Experiment3Sample {
            at_us: at.as_micros(),
            source_error,
            link_error,
            packets_in_interval: total - previous_packets,
        });
        previous_packets = total;
    }
    Experiment3Result {
        protocol: name.to_string(),
        samples,
        total_packets: sim.stats().total(),
        quiescent_at_us: None,
    }
}

/// Result of validating one randomized scenario against the oracle.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ValidationReport {
    /// Scenario label.
    pub scenario: String,
    /// Number of sessions checked.
    pub sessions: usize,
    /// Time to quiescence in microseconds.
    pub time_to_quiescence_us: u64,
    /// Number of sessions whose rate disagrees with the oracle.
    pub mismatches: usize,
    /// Number of max-min violations in the distributed allocation.
    pub violations: usize,
}

/// Runs a join-only workload on a scenario and checks the distributed rates
/// against both the centralized oracle and the max-min fairness conditions
/// (the validation methodology of Section IV of the paper).
pub fn validate_scenario(
    scenario: &NetworkScenario,
    sessions: usize,
    seed: u64,
) -> ValidationReport {
    let config = Experiment1Config {
        scenario: *scenario,
        sessions,
        join_window: Delay::from_millis(1),
        limits: LimitPolicy::RandomFinite {
            probability: 0.25,
            min_bps: 1e6,
            max_bps: 80e6,
        },
        seed,
    };
    let network = scenario.build();
    let schedule = config.schedule(&network);
    let mut sim = BneckSimulation::new(&network, BneckConfig::default());
    schedule.apply(&mut sim);
    let report = sim.run_to_quiescence();
    let session_set = sim.session_set();
    let oracle = CentralizedBneck::new(&network, &session_set).solve();
    let mismatches = compare_allocations(
        &session_set,
        &sim.allocation(),
        &oracle,
        Tolerance::new(1e-6, 10.0),
    )
    .err()
    .map(|v| v.len())
    .unwrap_or(0);
    let violations = verify_max_min(&network, &session_set, &sim.allocation())
        .err()
        .map(|v| v.len())
        .unwrap_or(0);
    ValidationReport {
        scenario: scenario.label(),
        sessions: session_set.len(),
        time_to_quiescence_us: report.quiescent_at.as_micros(),
        mismatches,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bneck_net::topology::transit_stub::NetworkSize;
    use bneck_net::DelayModel;

    #[test]
    fn experiment1_point_runs_and_validates() {
        let config = Experiment1Config::scaled(NetworkScenario::small_lan(80).with_seed(3), 30);
        let point = run_experiment1_point(&config);
        assert_eq!(point.sessions, 30);
        assert!(point.validated, "rates must match the oracle");
        assert!(point.total_packets > 0);
        assert!(point.time_to_quiescence_us > 0);
        assert!(point.packets_per_session > 1.0);
    }

    #[test]
    fn experiment2_phases_all_validate() {
        let mut config = Experiment2Config::scaled();
        config.scenario = NetworkScenario::small_lan(200);
        config.initial_sessions = 60;
        config.churn = 15;
        let (phases, series) = run_experiment2(&config);
        assert_eq!(phases.len(), 5);
        for phase in &phases {
            assert!(phase.validated, "phase {} did not validate", phase.name);
            assert!(phase.packets.total() > 0);
        }
        assert_eq!(
            series.total(),
            phases.iter().map(|p| p.packets.total()).sum::<u64>()
        );
        // After the leave phase fewer sessions are active than after the join
        // phase.
        assert!(phases[1].active_sessions < phases[0].active_sessions);
    }

    #[test]
    fn experiment3_bneck_goes_quiescent_and_baseline_does_not() {
        let mut config = Experiment3Config::scaled();
        config.scenario = NetworkScenario::small_lan(150);
        config.joins = 50;
        config.leaves = 5;
        config.horizon = Delay::from_millis(60);
        let results = run_experiment3(&config, &["BFYZ"]);
        assert_eq!(results.len(), 2);
        let bneck = &results[0];
        let bfyz = &results[1];
        assert_eq!(bneck.protocol, "B-Neck");
        assert_eq!(bfyz.protocol, "BFYZ");
        // B-Neck stops sending packets; the baseline keeps going.
        assert!(bneck.quiescent_at_us.is_some());
        assert!(bfyz.quiescent_at_us.is_none());
        assert_eq!(bneck.samples.last().unwrap().packets_in_interval, 0);
        assert!(bfyz.samples.last().unwrap().packets_in_interval > 0);
        // B-Neck's final error is (essentially) zero; its transient errors are
        // never positive beyond tolerance (conservative rates).
        let final_error = bneck.samples.last().unwrap().source_error;
        assert!(final_error.mean.abs() < 0.5);
        for sample in &bneck.samples {
            assert!(sample.source_error.p90 <= 0.5);
        }
    }

    #[test]
    fn validation_report_is_clean_on_small_scenarios() {
        let scenario = NetworkScenario {
            size: NetworkSize::Small,
            delay_model: DelayModel::Wan,
            hosts: 60,
            seed: 5,
        };
        let report = validate_scenario(&scenario, 25, 9);
        assert_eq!(report.mismatches, 0);
        assert_eq!(report.violations, 0);
        assert_eq!(report.sessions, 25);
    }
}
