//! Experiment runners: one function per figure of the paper.
//!
//! Every protocol is driven through the unified
//! [`ProtocolWorld`](bneck_workload::ProtocolWorld) trait (`&mut dyn
//! ProtocolWorld` at the driver boundary, built by [`build_protocol`]), so
//! adding a protocol touches only the factory in `bneck-baselines`, not the
//! runner. The `*_sweep`/`*_repeats` entry points fan their independent
//! points across worker threads with the [`SweepRunner`]; every point's RNG
//! seed derives from the point itself, so reports are bit-identical at any
//! thread count.

use crate::sweep::SweepRunner;
use bneck_core::prelude::*;
use bneck_maxmin::prelude::*;
use bneck_metrics::prelude::*;
use bneck_net::{Delay, Network};
use bneck_sim::{FaultCounters, FaultPlan, SimTime};
use bneck_workload::prelude::*;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// The fully-populated protocol registry of this workspace: B-Neck plus the
/// three baselines (BFYZ, CG, RCP), all with default parameters. The `bneck`
/// CLI and the spec driver resolve protocol names through this.
pub fn default_protocols() -> ProtocolRegistry {
    let mut registry = ProtocolRegistry::with_bneck();
    bneck_baselines::register_baselines(&mut registry);
    registry
}

/// One point of Figure 5: a session count on one scenario.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Experiment1Point {
    /// Scenario label (`small/lan`, `medium/wan`, …).
    pub scenario: String,
    /// Number of sessions that joined.
    pub sessions: usize,
    /// Time until quiescence, in microseconds (Figure 5, left).
    pub time_to_quiescence_us: u64,
    /// Total packets transmitted across all links (Figure 5, right).
    pub total_packets: u64,
    /// Average packets per session.
    pub packets_per_session: f64,
    /// `true` when the final rates match the centralized oracle.
    pub validated: bool,
}

/// Runs one point of Experiment 1: `config.sessions` sessions join within the
/// first millisecond; the run proceeds to quiescence and the resulting rates
/// are validated against the centralized oracle.
pub fn run_experiment1_point(config: &Experiment1Config) -> Experiment1Point {
    let network = config.scenario.build();
    let schedule = config.schedule(&network);
    let mut sim = BneckSimulation::new(&network, BneckConfig::default());
    let stats = schedule.apply(&mut sim);
    let report = sim.run_to_quiescence();
    let sessions = sim.session_set();
    let oracle = CentralizedBneck::new(&network, &sessions).solve();
    let validated = compare_allocations(
        &sessions,
        &sim.allocation(),
        &oracle,
        Tolerance::new(1e-6, 10.0),
    )
    .is_ok();
    let total_packets = sim.packet_stats().total();
    Experiment1Point {
        scenario: config.scenario.label(),
        sessions: stats.joins,
        time_to_quiescence_us: report.quiescent_at.as_micros(),
        total_packets,
        packets_per_session: if stats.joins > 0 {
            total_packets as f64 / stats.joins as f64
        } else {
            0.0
        },
        validated,
    }
}

/// Runs a whole Experiment 1 sweep, fanning the (scenario, session-count)
/// points across the runner's worker threads. Points are independent
/// simulations whose seeds live in their configs, so the returned vector is
/// bit-identical at any thread count and ordered like `configs`.
pub fn run_experiment1_sweep(
    configs: Vec<Experiment1Config>,
    runner: &SweepRunner,
) -> Vec<Experiment1Point> {
    runner.run(configs, |_, config| run_experiment1_point(&config))
}

/// One phase of Figure 6.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Experiment2PhaseResult {
    /// Phase name (`join`, `leave`, `change`, `join-2`, `mixed`).
    pub name: String,
    /// Time the phase started at (when its churn was injected).
    pub started_at_us: u64,
    /// Time the network needed to become quiescent again, in microseconds.
    pub time_to_quiescence_us: u64,
    /// Number of sessions active once the phase settled.
    pub active_sessions: usize,
    /// Packets transmitted during the phase, by kind.
    pub packets: PacketStats,
    /// `true` when the rates after the phase match the centralized oracle.
    pub validated: bool,
}

/// Runs Experiment 2: five churn phases on one network; after each phase the
/// protocol runs to quiescence and is validated against the oracle.
///
/// Returns the per-phase results plus the packet time series (5 ms bins, as in
/// Figure 6) of the whole run.
pub fn run_experiment2(
    config: &Experiment2Config,
) -> (Vec<Experiment2PhaseResult>, PacketTimeSeries) {
    let network = config.scenario.build();
    let mut planner = config.planner(&network);
    let mut sim = BneckSimulation::new(&network, BneckConfig::default().with_packet_log());
    let mut results = Vec::new();
    // One workspace across the five per-phase oracle solves.
    let mut ws = SolverWorkspace::new();
    for phase in config.phases() {
        let start = if sim.now() == SimTime::ZERO {
            SimTime::ZERO
        } else {
            sim.now() + Delay::from_millis(1)
        };
        let schedule = planner.phase(
            start,
            config.change_window,
            phase.joins,
            phase.leaves,
            phase.changes,
            config.limits,
        );
        let before = *sim.packet_stats();
        schedule.apply(&mut sim);
        let report = sim.run_to_quiescence();
        let sessions = sim.session_set();
        let oracle = CentralizedBneck::new(&network, &sessions).solve_in(&mut ws);
        let validated = compare_allocations(
            &sessions,
            &sim.allocation(),
            &oracle,
            Tolerance::new(1e-6, 10.0),
        )
        .is_ok();
        results.push(Experiment2PhaseResult {
            name: phase.name,
            started_at_us: start.as_micros(),
            time_to_quiescence_us: report.quiescent_at.saturating_since(start).as_micros(),
            active_sessions: sessions.len(),
            packets: sim.packet_stats().since(&before),
            validated,
        });
    }
    // Borrow the log in place: at paper scale it holds tens of millions of
    // entries, and a snapshot clone would momentarily double that memory.
    let series = sim.with_packet_log(|log| PacketTimeSeries::from_log(log, Delay::from_millis(5)));
    (results, series)
}

/// One full Experiment 2 run: the seed it was planned with, its five phase
/// results and the packet time series of the whole run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Experiment2Run {
    /// The planner seed of this repeat.
    pub seed: u64,
    /// The per-phase results.
    pub phases: Vec<Experiment2PhaseResult>,
    /// Packets per 5 ms bin over the whole run.
    pub series: PacketTimeSeries,
}

/// Runs `repeats` independent Experiment 2 repetitions (seeds
/// `base.seed + repeat index`), fanning them across the runner's worker
/// threads. Results are ordered by repeat index and bit-identical at any
/// thread count.
pub fn run_experiment2_repeats(
    base: &Experiment2Config,
    repeats: usize,
    runner: &SweepRunner,
) -> Vec<Experiment2Run> {
    let configs: Vec<Experiment2Config> = (0..repeats.max(1) as u64)
        .map(|i| Experiment2Config {
            seed: base.seed + i,
            ..*base
        })
        .collect();
    runner.run(configs, |_, config| {
        let (phases, series) = run_experiment2(&config);
        Experiment2Run {
            seed: config.seed,
            phases,
            series,
        }
    })
}

/// One sampling instant of Experiment 3, for one protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Experiment3Sample {
    /// Sampling time in microseconds.
    pub at_us: u64,
    /// Relative error (in percent) of the assigned rates at the sources.
    pub source_error: Summary,
    /// Relative error (in percent) of the aggregate rates on bottleneck links.
    pub link_error: Summary,
    /// Packets transmitted since the previous sample.
    pub packets_in_interval: u64,
}

/// The outcome of Experiment 3 for one protocol.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Experiment3Result {
    /// Protocol name (`B-Neck`, `BFYZ`, `CG`, `RCP`).
    pub protocol: String,
    /// Samples every `sample_interval` until the horizon.
    pub samples: Vec<Experiment3Sample>,
    /// Total packets transmitted over the whole horizon.
    pub total_packets: u64,
    /// Time after which the protocol stopped sending packets entirely, if it
    /// did (only B-Neck does).
    pub quiescent_at_us: Option<u64>,
}

/// Builds a protocol-under-test by display name from the
/// [`default_protocols`] registry: `B-Neck` itself or one of the baselines.
///
/// Kept as a convenience over the registry — drivers that accept a caller
/// registry (the CLI, [`run_experiment3_registry`]) should take a
/// [`ProtocolRegistry`] instead, so embedders can add protocols without
/// touching this crate.
pub fn build_protocol<'a>(name: &str, network: &'a Network) -> Option<Box<dyn ProtocolWorld + 'a>> {
    default_protocols().build(name, network)
}

/// Drives one protocol through the Experiment 3 measurement loop: apply the
/// workload, then sample the assigned rates at fixed intervals against the
/// reference max-min solution of the surviving sessions.
fn run_protocol(
    sim: &mut dyn ProtocolWorld,
    schedule: &Schedule,
    sample_times: &[SimTime],
    solution: &CentralizedSolution,
) -> Experiment3Result {
    schedule.apply(sim);
    let mut samples = Vec::new();
    let mut previous_packets = 0u64;
    let mut quiescent_at = None;
    for &at in sample_times {
        let report = sim.run_to(at);
        if sim.goes_quiescent() && report.quiescent && quiescent_at.is_none() {
            quiescent_at = Some(report.quiescent_at.as_micros());
        }
        let assigned = sim.current_rates();
        let source_error = Summary::of(&rate_errors(&assigned, &solution.allocation));
        let link_error = Summary::of(&link_stress_errors(&assigned, solution));
        let total = sim.packets_sent();
        samples.push(Experiment3Sample {
            at_us: at.as_micros(),
            source_error,
            link_error,
            packets_in_interval: total - previous_packets,
        });
        previous_packets = total;
    }
    Experiment3Result {
        protocol: sim.protocol_name().to_string(),
        samples,
        total_packets: sim.packets_sent(),
        quiescent_at_us: quiescent_at,
    }
}

/// Runs Experiment 3 for B-Neck and the requested baselines on the same
/// workload: joins plus early leaves, then rate samples every
/// `config.sample_interval` until `config.horizon`, with the error measured
/// against the centralized max-min rates of the surviving sessions (Figures 7
/// and 8). Protocols run serially; see [`run_experiment3_with`] for the
/// parallel driver.
pub fn run_experiment3(config: &Experiment3Config, baselines: &[&str]) -> Vec<Experiment3Result> {
    run_experiment3_with(config, baselines, &SweepRunner::new(1))
}

/// [`run_experiment3`], with the protocol cells fanned across the runner's
/// worker threads. Every protocol runs its own independent simulation over a
/// shared network, schedule and reference solution, so the results are
/// bit-identical at any thread count and ordered B-Neck first, then the
/// requested baselines.
///
/// # Panics
///
/// Panics if a requested baseline name is unknown (expected `BFYZ`, `CG` or
/// `RCP`).
pub fn run_experiment3_with(
    config: &Experiment3Config,
    baselines: &[&str],
    runner: &SweepRunner,
) -> Vec<Experiment3Result> {
    run_experiment3_registry(config, baselines, &default_protocols(), runner)
}

/// [`run_experiment3_with`], resolving protocol names through a caller
/// registry — the entry point of the spec-driven CLI, and the way to run the
/// accuracy experiment over protocols this workspace does not know about.
///
/// # Panics
///
/// Panics if a requested protocol name is not registered.
pub fn run_experiment3_registry(
    config: &Experiment3Config,
    baselines: &[&str],
    registry: &ProtocolRegistry,
    runner: &SweepRunner,
) -> Vec<Experiment3Result> {
    let network = config.scenario.build();
    let schedule = config.schedule(&network);
    let sample_times = config.sample_times();

    // The reference allocation: the max-min fair rates of the sessions that
    // remain after the initial churn (computed from a bookkeeping-only pass).
    let mut reference = BneckSimulation::new(&network, BneckConfig::default());
    schedule.apply(&mut reference);
    let final_sessions = reference.session_set();
    let solution = CentralizedBneck::new(&network, &final_sessions).solve_with_bottlenecks();

    let mut protocols = vec!["B-Neck"];
    protocols.extend(baselines);
    runner.run(protocols, |_, name| {
        let mut sim = registry
            .build(name, &network)
            .unwrap_or_else(|| panic!("protocol {name} is not in the registry"));
        run_protocol(sim.as_mut(), &schedule, &sample_times, &solution)
    })
}

/// Result of validating one randomized scenario against the oracle.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ValidationReport {
    /// Scenario label.
    pub scenario: String,
    /// The scenario's topology seed (the former `validate` binary printed it
    /// from its point list; carrying it in the report makes the report
    /// self-describing).
    pub topology_seed: u64,
    /// Number of sessions checked.
    pub sessions: usize,
    /// Time to quiescence in microseconds.
    pub time_to_quiescence_us: u64,
    /// Number of sessions whose rate disagrees with the oracle.
    pub mismatches: usize,
    /// Number of max-min violations in the distributed allocation.
    pub violations: usize,
}

/// Runs a join-only workload on a scenario and checks the distributed rates
/// against both the centralized oracle and the max-min fairness conditions
/// (the validation methodology of Section IV of the paper).
pub fn validate_scenario(
    scenario: &NetworkScenario,
    sessions: usize,
    seed: u64,
) -> ValidationReport {
    let config = Experiment1Config {
        scenario: *scenario,
        sessions,
        join_window: Delay::from_millis(1),
        limits: LimitPolicy::RandomFinite {
            probability: 0.25,
            min_bps: 1e6,
            max_bps: 80e6,
        },
        seed,
    };
    let network = scenario.build();
    let schedule = config.schedule(&network);
    let mut sim = BneckSimulation::new(&network, BneckConfig::default());
    schedule.apply(&mut sim);
    let report = sim.run_to_quiescence();
    let session_set = sim.session_set();
    let oracle = CentralizedBneck::new(&network, &session_set).solve();
    let mismatches = compare_allocations(
        &session_set,
        &sim.allocation(),
        &oracle,
        Tolerance::new(1e-6, 10.0),
    )
    .err()
    .map(|v| v.len())
    .unwrap_or(0);
    let violations = verify_max_min(&network, &session_set, &sim.allocation())
        .err()
        .map(|v| v.len())
        .unwrap_or(0);
    ValidationReport {
        scenario: scenario.label(),
        topology_seed: scenario.seed,
        sessions: session_set.len(),
        time_to_quiescence_us: report.quiescent_at.as_micros(),
        mismatches,
        violations,
    }
}

/// One validation run: a scenario, a session count and the workload seed.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ValidationPoint {
    /// The network scenario.
    pub scenario: NetworkScenario,
    /// Number of sessions to plan.
    pub sessions: usize,
    /// Seed of the randomized workload.
    pub seed: u64,
}

/// Runs every validation point, fanning the independent runs across the
/// runner's worker threads; reports come back in point order, bit-identical
/// at any thread count.
pub fn run_validation_sweep(
    points: Vec<ValidationPoint>,
    runner: &SweepRunner,
) -> Vec<ValidationReport> {
    runner.run(points, |_, point| {
        validate_scenario(&point.scenario, point.sessions, point.seed)
    })
}

/// The deterministic outcome of one paper-scale join-to-quiescence point
/// (the wall-clock timings live in [`ScaleRun::detail`], outside the report,
/// so reports stay bit-identical at any thread count and across machines).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ScaleReport {
    /// Number of sessions the point planned.
    pub sessions: usize,
    /// Number of join events the harness accepted.
    pub joins_applied: usize,
    /// Whether the run reached quiescence.
    pub quiescent: bool,
    /// Simulated time of quiescence, in microseconds.
    pub quiescent_at_us: u64,
    /// Events processed during the run.
    pub events_processed: u64,
    /// Packets transmitted over links.
    pub packets_sent: u64,
    /// Average packets per session.
    pub packets_per_session: f64,
    /// Sessions disagreeing with the centralized oracle; `None` when
    /// validation was skipped.
    pub mismatches: Option<usize>,
}

impl ScaleReport {
    /// `true` when the run reached quiescence, every planned session joined,
    /// and — if validated — the rates agreed with the oracle.
    pub fn ok(&self) -> bool {
        self.quiescent && self.joins_applied == self.sessions && self.mismatches.unwrap_or(0) == 0
    }
}

/// Wall-clock phase breakdown of one paper-scale run, plus the process peak
/// RSS sampled after the run. Not part of [`ScaleReport`] — wall-clock times
/// and memory footprints are machine-dependent, and scale reports must stay
/// bit-identical across thread counts and hosts — but carried next to it so
/// performance tooling (`bneck sweep --scale-curve`) can emit them.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ScaleTimings {
    /// Seconds spent building the network.
    pub build_s: f64,
    /// Seconds spent planning sessions and schedules (routing included).
    pub plan_s: f64,
    /// Seconds spent applying the schedule and running to quiescence.
    pub run_s: f64,
    /// Seconds spent on the centralized-oracle cross-check (0 when skipped).
    pub oracle_s: f64,
    /// Seconds for the whole point, end to end.
    pub total_s: f64,
    /// Peak resident set size of the process in bytes (`VmHWM`), 0 when the
    /// platform does not expose it. Cumulative across points run in the same
    /// process: a high-water mark never goes back down.
    pub peak_rss_bytes: u64,
    /// Engine shards the point ran on (1 = the serial engine). Lives here
    /// rather than in [`ScaleReport`] because the report is bit-identical at
    /// any shard count — only the wall clock changes.
    pub shards: usize,
    /// Events processed per shard (one entry per shard; a single entry for a
    /// serial run). The load-balance diagnostic for the partition.
    pub shard_events: Vec<u64>,
}

/// Peak resident set size (`VmHWM`) of the current process in bytes, or 0
/// when `/proc/self/status` is unavailable (non-Linux platforms).
pub fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                let rest = line.strip_prefix("VmHWM:")?;
                rest.trim().strip_suffix("kB")?.trim().parse::<u64>().ok()
            })
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// One paper-scale run: the deterministic report plus human-oriented detail
/// lines (network dimensions, wall-clock timings).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleRun {
    /// The deterministic outcome.
    pub report: ScaleReport,
    /// The wall-clock phase breakdown and peak RSS of this point.
    pub timings: ScaleTimings,
    /// Multi-line progress/timing detail for operators (not part of the
    /// machine-readable report: wall-clock times are not reproducible).
    pub detail: String,
}

/// Runs one paper-scale point: builds the network, applies the join
/// schedule, drives to quiescence, and — unless `validate` is off —
/// cross-checks the final rates against the centralized oracle.
///
/// `shards <= 1` runs the serial engine; larger values run the same
/// workload on the conservative parallel engine
/// ([`ShardedBneckSimulation`]), whose report is bit-identical to the
/// serial one — only the wall-clock timings (and their new `shards` /
/// `shard_events` fields) differ.
#[allow(clippy::disallowed_methods)] // wall-clock phase timing, mirrored by the xlint DET002 allows below
pub fn run_scale_point(config: &Experiment1Config, validate: bool, shards: usize) -> ScaleRun {
    use std::fmt::Write as _;
    use std::time::Instant;

    let sessions = config.sessions;
    // xlint: allow(DET002, reason = "operator-facing phase timing only; feeds the free-text detail, never the machine-readable report")
    let t0 = Instant::now();
    let network = config.scenario.build();
    let t_build = t0.elapsed();
    let mut detail = format!(
        "[scale] network: {} routers, {} hosts, {} links ({:.2?})\n",
        network.router_count(),
        network.host_count(),
        network.link_count(),
        t_build
    );

    // xlint: allow(DET002, reason = "operator-facing phase timing only; feeds the free-text detail, never the machine-readable report")
    let t1 = Instant::now();
    let schedule = config.schedule(&network);
    let t_plan = t1.elapsed();

    // xlint: allow(DET002, reason = "operator-facing phase timing only; feeds the free-text detail, never the machine-readable report")
    let t2 = Instant::now();
    let (stats, report, shard_events, oracle_state) = if shards > 1 {
        let mut sim = ShardedBneckSimulation::new(&network, BneckConfig::default(), shards);
        let stats = schedule.apply(&mut sim);
        let report = sim.run_to_quiescence();
        let events = sim.shard_events();
        let state = validate.then(|| (sim.session_set(), sim.allocation()));
        (stats, report, events, state)
    } else {
        let mut sim = BneckSimulation::new(&network, BneckConfig::default());
        let stats = schedule.apply(&mut sim);
        let report = sim.run_to_quiescence();
        let events = vec![report.events_processed];
        let state = validate.then(|| (sim.session_set(), sim.allocation()));
        (stats, report, events, state)
    };
    let t_run = t2.elapsed();
    let _ = write!(
        detail,
        "[scale] {} joins applied, quiescent={} at {}us after {} events / {} packets ({:.2?}, {} shard{})",
        stats.joins,
        report.quiescent,
        report.quiescent_at.as_micros(),
        report.events_processed,
        report.packets_sent,
        t_run,
        shards.max(1),
        if shards > 1 { "s" } else { "" },
    );

    let mut mismatches = None;
    let mut t_oracle = std::time::Duration::ZERO;
    if let Some((session_set, allocation)) = oracle_state {
        // xlint: allow(DET002, reason = "operator-facing phase timing only; feeds the free-text detail, never the machine-readable report")
        let t3 = Instant::now();
        let oracle = CentralizedBneck::new(&network, &session_set).solve();
        mismatches = Some(
            compare_allocations(
                &session_set,
                &allocation,
                &oracle,
                Tolerance::new(1e-6, 10.0),
            )
            .err()
            .map(|v| v.len())
            .unwrap_or(0),
        );
        t_oracle = t3.elapsed();
    }
    let timings = ScaleTimings {
        build_s: t_build.as_secs_f64(),
        plan_s: t_plan.as_secs_f64(),
        run_s: t_run.as_secs_f64(),
        oracle_s: t_oracle.as_secs_f64(),
        total_s: t0.elapsed().as_secs_f64(),
        peak_rss_bytes: peak_rss_bytes(),
        shards: shards.max(1),
        shard_events,
    };
    let _ = write!(
        detail,
        "\n[scale] build_s={:.3} plan_s={:.3} run_s={:.3} oracle_s={:.3} total_s={:.3} peak_rss_mib={:.1}",
        timings.build_s,
        timings.plan_s,
        timings.run_s,
        timings.oracle_s,
        timings.total_s,
        timings.peak_rss_bytes as f64 / (1024.0 * 1024.0),
    );

    ScaleRun {
        report: ScaleReport {
            sessions,
            joins_applied: stats.joins,
            quiescent: report.quiescent,
            quiescent_at_us: report.quiescent_at.as_micros(),
            events_processed: report.events_processed,
            packets_sent: report.packets_sent,
            packets_per_session: report.packets_sent as f64 / sessions.max(1) as f64,
            mismatches,
        },
        timings,
        detail,
    }
}

/// One point of the machine-readable scale curve (`BENCH_SCALE.json`): the
/// deterministic outcome of a paper-scale run joined with its wall-clock
/// phase breakdown, per-event cost and peak RSS.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ScaleCurvePoint {
    /// Number of sessions the point planned.
    pub sessions: usize,
    /// Engine shards the point ran on (1 = the serial engine).
    pub shards: usize,
    /// Events processed during the run.
    pub events_processed: u64,
    /// Packets transmitted over links.
    pub packets_sent: u64,
    /// Average packets per session.
    pub packets_per_session: f64,
    /// Engine cost per event in nanoseconds (`run_s / events_processed`).
    pub ns_per_event: f64,
    /// Seconds spent building the network.
    pub build_s: f64,
    /// Seconds spent planning sessions and schedules.
    pub plan_s: f64,
    /// Seconds spent running to quiescence.
    pub run_s: f64,
    /// Seconds spent on the oracle cross-check (0 when skipped).
    pub oracle_s: f64,
    /// Seconds for the whole point.
    pub total_s: f64,
    /// Peak resident set size in MiB at the end of the point.
    pub peak_rss_mib: f64,
    /// Whether the run reached quiescence.
    pub quiescent: bool,
    /// Oracle mismatches (`None` when validation was skipped).
    pub mismatches: Option<usize>,
}

impl ScaleCurvePoint {
    /// Joins a scale report with its timings into one curve point.
    pub fn new(report: &ScaleReport, timings: &ScaleTimings) -> Self {
        ScaleCurvePoint {
            sessions: report.sessions,
            shards: timings.shards,
            events_processed: report.events_processed,
            packets_sent: report.packets_sent,
            packets_per_session: report.packets_per_session,
            ns_per_event: if report.events_processed > 0 {
                timings.run_s * 1e9 / report.events_processed as f64
            } else {
                0.0
            },
            build_s: timings.build_s,
            plan_s: timings.plan_s,
            run_s: timings.run_s,
            oracle_s: timings.oracle_s,
            total_s: timings.total_s,
            peak_rss_mib: timings.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            quiescent: report.quiescent,
            mismatches: report.mismatches,
        }
    }
}

/// How one fault-injected run ended. The classification is sound by
/// construction: a run is [`Converged`](FaultOutcome::Converged) only when it
/// both reached quiescence *and* every rate matched the centralized oracle —
/// a corrupted run can never be reported as a success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum FaultOutcome {
    /// Quiescent with oracle-exact rates.
    Converged,
    /// Quiescent, but at least one session's rate disagrees with the oracle
    /// (lost or duplicated control packets corrupted the protocol state).
    WrongRates,
    /// Still had events in flight at the horizon (e.g. a lost packet left a
    /// probe cycle waiting forever, or retransmissions were still draining).
    Stuck,
}

impl FaultOutcome {
    /// Short lowercase label for tables and notes.
    pub fn label(&self) -> &'static str {
        match self {
            FaultOutcome::Converged => "converged",
            FaultOutcome::WrongRates => "wrong-rates",
            FaultOutcome::Stuck => "stuck",
        }
    }
}

/// Injected-fault counters of one channel, keyed by the raw channel index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ChannelFaultSummary {
    /// The engine channel the faults were injected on.
    pub channel: u32,
    /// What was dropped, duplicated and delayed on it.
    pub counters: FaultCounters,
}

/// The outcome of one fault-injected run (raw or recovery-enabled).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FaultRunResult {
    /// The honest classification of the run.
    pub outcome: FaultOutcome,
    /// Whether the run drained before the horizon.
    pub quiescent: bool,
    /// Simulated time the run went quiescent (or the horizon), microseconds.
    pub quiescent_at_us: u64,
    /// Events processed during the run.
    pub events_processed: u64,
    /// Packets transmitted over links.
    pub packets_sent: u64,
    /// Sessions whose final rate disagrees with the centralized oracle.
    pub mismatches: usize,
    /// Total faults injected across every channel.
    pub faults: FaultCounters,
    /// Per-channel fault breakdown (channels with at least one fault).
    pub channel_faults: Vec<ChannelFaultSummary>,
    /// The recovery layer's work counters (`None` on raw runs).
    pub recovery: Option<RecoveryStats>,
    /// Recovery frames still unacknowledged at the end (must be 0 for a
    /// quiescent recovered run).
    pub unacked_frames: usize,
}

/// One lowered cell of a fault sweep: the shared join workload plus this
/// cell's fault plan, recovery setting and horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FaultPointConfig {
    /// The network scenario.
    pub scenario: NetworkScenario,
    /// Number of sessions to join.
    pub sessions: usize,
    /// Window in which all joins happen.
    pub join_window: Delay,
    /// Maximum-rate request policy.
    pub limits: LimitPolicy,
    /// Workload seed (shared across the grid, so every cell replays the same
    /// joins).
    pub workload_seed: u64,
    /// This cell's fault plan (its seed differs per cell).
    pub plan: FaultPlan,
    /// RTO of the additional recovery-enabled run, `None` to skip it.
    pub recovery_rto: Option<Delay>,
    /// Horizon after which a non-quiescent run is recorded as stuck.
    pub horizon: Delay,
}

/// The report of one fault-sweep cell: the raw run's honest outcome, and —
/// when requested — the recovery-enabled run that is expected to restore
/// oracle-exact convergence.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FaultPointReport {
    /// Per-transmission drop probability of this cell.
    pub drop: f64,
    /// Per-transmission duplication probability of this cell.
    pub duplicate: f64,
    /// The fault-plan seed this cell rolled its faults from.
    pub fault_seed: u64,
    /// The run without the recovery layer: converged, wrong-rates or stuck,
    /// recorded as observed.
    pub raw: FaultRunResult,
    /// The run with sequencing + retransmission enabled (`None` when the
    /// sweep did not request recovery runs).
    pub recovered: Option<FaultRunResult>,
}

impl FaultPointReport {
    /// `true` when the cell meets its contract: a recovery-enabled run must
    /// converge with nothing left unacknowledged, while the raw run is an
    /// honest record that cannot fail (its outcome *is* the data).
    pub fn ok(&self) -> bool {
        match &self.recovered {
            Some(run) => run.outcome == FaultOutcome::Converged && run.unacked_frames == 0,
            None => true,
        }
    }
}

/// Runs one fault-injected simulation and classifies it honestly.
fn run_fault_run(config: &FaultPointConfig, with_recovery: bool) -> FaultRunResult {
    let network = config.scenario.build();
    let workload = Experiment1Config {
        scenario: config.scenario,
        sessions: config.sessions,
        join_window: config.join_window,
        limits: config.limits,
        seed: config.workload_seed,
    };
    let schedule = workload.schedule(&network);
    let mut bneck = BneckConfig::default();
    if with_recovery {
        if let Some(rto) = config.recovery_rto {
            bneck = bneck.with_recovery(rto);
        }
    }
    let mut sim = BneckSimulation::new(&network, bneck);
    sim.set_fault_plan(config.plan);
    schedule.apply(&mut sim);
    let report = sim.run_until(SimTime::ZERO + config.horizon);
    let session_set = sim.session_set();
    let oracle = CentralizedBneck::new(&network, &session_set).solve();
    let mismatches = compare_allocations(
        &session_set,
        &sim.allocation(),
        &oracle,
        Tolerance::new(1e-6, 10.0),
    )
    .err()
    .map(|v| v.len())
    .unwrap_or(0);
    let outcome = if !report.quiescent {
        FaultOutcome::Stuck
    } else if mismatches > 0 {
        FaultOutcome::WrongRates
    } else {
        FaultOutcome::Converged
    };
    FaultRunResult {
        outcome,
        quiescent: report.quiescent,
        quiescent_at_us: report.quiescent_at.as_micros(),
        events_processed: report.events_processed,
        packets_sent: report.packets_sent,
        mismatches,
        faults: sim.fault_totals(),
        channel_faults: sim
            .fault_breakdown()
            .into_iter()
            .map(|(channel, counters)| ChannelFaultSummary {
                channel: channel.0,
                counters,
            })
            .collect(),
        recovery: sim.recovery_stats(),
        unacked_frames: sim.unacked_frames(),
    }
}

/// Runs one cell of a fault sweep: the raw run always, plus a
/// recovery-enabled run when the cell carries an RTO.
pub fn run_fault_point(config: &FaultPointConfig) -> FaultPointReport {
    let raw = run_fault_run(config, false);
    let recovered = config.recovery_rto.map(|_| run_fault_run(config, true));
    FaultPointReport {
        drop: config.plan.drop,
        duplicate: config.plan.duplicate,
        fault_seed: config.plan.seed,
        raw,
        recovered,
    }
}

/// Lowers a [`FaultSweepSpec`] into per-cell configs: cell `i` (drop-major
/// order) rolls its faults from `fault_seed + i`, so every cell has an
/// independent fault stream over the same replayed workload.
///
/// # Errors
///
/// Propagates the spec's own grid validation ([`FaultSweepSpec::points`]).
pub fn fault_point_configs(
    spec: &FaultSweepSpec,
    scenario: NetworkScenario,
) -> Result<Vec<FaultPointConfig>, SpecError> {
    let points = spec.points()?;
    Ok(points
        .iter()
        .enumerate()
        .map(|(i, point)| FaultPointConfig {
            scenario,
            sessions: spec.sessions,
            join_window: Delay::from_micros(spec.join_window_us),
            limits: spec.limits,
            workload_seed: spec.workload_seed,
            plan: FaultPlan::new(
                spec.fault_seed + i as u64,
                point.drop,
                point.duplicate,
                spec.reorder,
                spec.reorder_window,
            ),
            recovery_rto: spec.with_recovery.then(|| Delay::from_micros(spec.rto_us)),
            horizon: Delay::from_millis(spec.horizon_ms),
        })
        .collect())
}

/// Runs every fault-sweep cell, fanned across the runner's worker threads;
/// reports come back in cell order, bit-identical at any thread count (each
/// cell's fault and workload seeds live in its config).
pub fn run_fault_sweep(
    configs: Vec<FaultPointConfig>,
    runner: &SweepRunner,
) -> Vec<FaultPointReport> {
    runner.run(configs, |_, config| run_fault_point(&config))
}

/// Runs every paper-scale point at every shard count (config-major order),
/// fanned across the runner's worker threads; reports come back in point
/// order, bit-identical at any thread count *and* any shard count (only the
/// timings differ across shard counts).
///
/// An empty `shards` list means serial (`[1]`).
pub fn run_scale_sweep(
    configs: Vec<Experiment1Config>,
    validate: bool,
    shards: &[usize],
    runner: &SweepRunner,
) -> Vec<ScaleRun> {
    let shard_counts: &[usize] = if shards.is_empty() { &[1] } else { shards };
    let mut points = Vec::with_capacity(configs.len() * shard_counts.len());
    for config in configs {
        for &shards in shard_counts {
            points.push((config, shards.max(1)));
        }
    }
    runner.run(points, |_, (config, shards)| {
        run_scale_point(&config, validate, shards)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bneck_net::topology::transit_stub::NetworkSize;
    use bneck_net::DelayModel;

    #[test]
    fn experiment1_point_runs_and_validates() {
        let config = Experiment1Config::scaled(NetworkScenario::small_lan(80).with_seed(3), 30);
        let point = run_experiment1_point(&config);
        assert_eq!(point.sessions, 30);
        assert!(point.validated, "rates must match the oracle");
        assert!(point.total_packets > 0);
        assert!(point.time_to_quiescence_us > 0);
        assert!(point.packets_per_session > 1.0);
    }

    #[test]
    fn experiment2_phases_all_validate() {
        let mut config = Experiment2Config::scaled();
        config.scenario = NetworkScenario::small_lan(200);
        config.initial_sessions = 60;
        config.churn = 15;
        let (phases, series) = run_experiment2(&config);
        assert_eq!(phases.len(), 5);
        for phase in &phases {
            assert!(phase.validated, "phase {} did not validate", phase.name);
            assert!(phase.packets.total() > 0);
        }
        assert_eq!(
            series.total(),
            phases.iter().map(|p| p.packets.total()).sum::<u64>()
        );
        // After the leave phase fewer sessions are active than after the join
        // phase.
        assert!(phases[1].active_sessions < phases[0].active_sessions);
    }

    #[test]
    fn experiment3_bneck_goes_quiescent_and_baseline_does_not() {
        let mut config = Experiment3Config::scaled();
        config.scenario = NetworkScenario::small_lan(150);
        config.joins = 50;
        config.leaves = 5;
        config.horizon = Delay::from_millis(60);
        let results = run_experiment3(&config, &["BFYZ"]);
        assert_eq!(results.len(), 2);
        let bneck = &results[0];
        let bfyz = &results[1];
        assert_eq!(bneck.protocol, "B-Neck");
        assert_eq!(bfyz.protocol, "BFYZ");
        // B-Neck stops sending packets; the baseline keeps going.
        assert!(bneck.quiescent_at_us.is_some());
        assert!(bfyz.quiescent_at_us.is_none());
        assert_eq!(bneck.samples.last().unwrap().packets_in_interval, 0);
        assert!(bfyz.samples.last().unwrap().packets_in_interval > 0);
        // B-Neck's final error is (essentially) zero; its transient errors are
        // never positive beyond tolerance (conservative rates).
        let final_error = bneck.samples.last().unwrap().source_error;
        assert!(final_error.mean.abs() < 0.5);
        for sample in &bneck.samples {
            assert!(sample.source_error.p90 <= 0.5);
        }
    }

    #[test]
    fn experiment3_parallel_driver_matches_the_serial_one() {
        let mut config = Experiment3Config::scaled();
        config.scenario = NetworkScenario::small_lan(120);
        config.joins = 30;
        config.leaves = 3;
        config.horizon = Delay::from_millis(30);
        let serial = run_experiment3(&config, &["BFYZ", "CG", "RCP"]);
        let parallel = run_experiment3_with(&config, &["BFYZ", "CG", "RCP"], &SweepRunner::new(4));
        assert_eq!(
            serial, parallel,
            "protocol cells are thread-count independent"
        );
        assert_eq!(parallel.len(), 4);
        assert_eq!(parallel[3].protocol, "RCP");
    }

    #[test]
    fn unknown_protocols_are_rejected_at_the_dispatch_boundary() {
        let network = NetworkScenario::small_lan(20).build();
        assert!(build_protocol("B-Neck", &network).is_some());
        for name in bneck_baselines::BASELINE_NAMES {
            assert!(build_protocol(name, &network).is_some());
        }
        assert!(build_protocol("XCP", &network).is_none());
    }

    #[test]
    fn fault_sweep_cells_are_honest_and_recovery_restores_convergence() {
        let spec = FaultSweepSpec {
            topology: ScenarioSpec::new("small/lan", 20),
            sessions: 8,
            join_window_us: 1_000,
            limits: LimitPolicy::Unlimited,
            workload_seed: 1,
            fault_seed: 42,
            drop: vec![0.0, 0.05],
            duplicate: vec![0.01],
            reorder: 0.25,
            reorder_window: 4,
            with_recovery: true,
            rto_us: 500,
            horizon_ms: 200,
        };
        let configs = fault_point_configs(&spec, NetworkScenario::small_lan(20)).unwrap();
        assert_eq!(configs.len(), 2);
        let reports = run_fault_sweep(configs, &SweepRunner::new(2));
        for report in &reports {
            // The recovery contract: oracle-exact quiescent convergence with
            // nothing left in flight.
            let recovered = report.recovered.as_ref().unwrap();
            assert_eq!(recovered.outcome, FaultOutcome::Converged);
            assert_eq!(recovered.mismatches, 0);
            assert_eq!(recovered.unacked_frames, 0);
            assert!(report.ok());
            // Classification soundness: `Converged` can only mean quiescent
            // *and* oracle-exact.
            if report.raw.outcome == FaultOutcome::Converged {
                assert!(report.raw.quiescent);
                assert_eq!(report.raw.mismatches, 0);
            }
            assert!(report.raw.faults.total() > 0, "faults were injected");
            assert!(!report.raw.channel_faults.is_empty());
        }
        // The lossy cell forced drops on the raw run and retransmissions on
        // the recovered one.
        let lossy = &reports[1];
        assert!(lossy.raw.faults.dropped > 0);
        let stats = lossy.recovered.as_ref().unwrap().recovery.unwrap();
        assert!(stats.retransmits > 0);
    }

    #[test]
    fn validation_report_is_clean_on_small_scenarios() {
        let scenario = NetworkScenario {
            size: NetworkSize::Small,
            delay_model: DelayModel::Wan,
            hosts: 60,
            seed: 5,
        };
        let report = validate_scenario(&scenario, 25, 9);
        assert_eq!(report.mismatches, 0);
        assert_eq!(report.violations, 0);
        assert_eq!(report.sessions, 25);
    }
}
