//! The `bneck` command-line driver.
//!
//! One binary drives every experiment of the paper's evaluation from a
//! declarative [`ExperimentSpec`] — a shipped preset or a JSON spec file —
//! replacing the former `experiment1`/`experiment2`/`experiment3`/`validate`/
//! `paper_scale` one-off binaries (which remain as thin forwarding wrappers
//! for one release):
//!
//! ```text
//! bneck run (--preset NAME | SPEC.json) [overrides] [--json] [--out PATH]
//! bneck sweep [--preset paper_scale] [--sessions N[,N...]] [--shards N[,N...]]
//! bneck node [--nodes N] [--sessions N] [--routers N] [--transport tcp|channel]
//! bneck validate [SPEC.json ...]
//! bneck bench-presets [--json]
//! ```
//!
//! `run` executes a spec and prints the text tables, CSV and (on request)
//! the machine-readable JSON report; reports are bit-identical at any
//! `BNECK_THREADS`/`--threads` worker count and at any `--shards` engine
//! shard count. `sweep` is `run` specialised to the paper-scale session
//! sweep. `node` leaves the simulator entirely: it spins up a loopback
//! cluster of real worker threads (`bneck-node`), joins every session, waits
//! for the control plane to go measurably silent, and cross-checks the final
//! rates against the centralized oracle. `validate` checks spec files against
//! the registries without running anything (CI's `spec-check`).
//! `bench-presets` lists the shipped presets.

use crate::report::{render_tables, run_spec, SpecOutcome};
use crate::runner::default_protocols;
use crate::sweep::SweepRunner;
use bneck_core::RecoveryConfig;
use bneck_metrics::Table;
use bneck_net::Delay;
use bneck_node::{run_cluster, ClusterSpec, ClusterTransport};
use bneck_workload::registry::{ProtocolRegistry, TopologyRegistry};
use bneck_workload::spec::{ExperimentKind, ExperimentSpec, PAPER_FULL, PRESET_NAMES};
use std::time::Duration;

const USAGE: &str = "\
bneck — declarative driver for the B-Neck paper experiments

USAGE:
    bneck run (--preset NAME | SPEC.json) [OPTIONS]
    bneck sweep [--preset NAME] [--sessions N[,N...]] [OPTIONS]
    bneck node [NODE OPTIONS]
    bneck validate [SPEC.json ...]
    bneck bench-presets [--json]

RUN OPTIONS:
    --preset NAME         run a shipped preset (see `bneck bench-presets`)
    --sessions N[,N...]   override the session sweep (joins/scale specs)
    --shards N[,N...]     run each scale point at these engine shard counts
                          (scale specs; default 1 = the serial engine —
                          reports are bit-identical at any shard count)
    --threads N           worker threads for fanning sweep points
                          (overrides BNECK_THREADS; default: BNECK_THREADS,
                          then all cores)
    --repeats N           override the repeat count (churn specs)
    --baselines A[,B...]  override the baselines (accuracy specs)
    --no-validate         skip the oracle cross-check (scale specs)
    --faults P[,P...]     run a fault sweep over these drop probabilities
                          (defaults to the `faults` preset when no spec is
                          given; the JSON report carries per-channel
                          injected-fault counters for every run)
    --dup P[,P...]        override the duplication axis (fault sweeps)
    --fault-seed N        override the fault-plan seed (fault sweeps)
    --no-recovery         skip the recovery-enabled runs (fault sweeps)
    --scale-curve         write the per-point performance curve — ns/event,
                          phase timings, peak RSS — as JSON (scale specs)
    --curve-out PATH      scale-curve output path (default: BENCH_SCALE.json)
    --json                print the JSON report to stdout
    --out PATH            write the JSON report to PATH
    --no-tables           suppress the text tables
    --no-csv              suppress the CSV renderings

NODE OPTIONS (multi-node loopback cluster, no simulator):
    --nodes N             worker threads to partition the topology over
                          (default 4)
    --sessions N          client sessions, one fresh host pair each
                          (default 1000)
    --routers N           routers in the trunk chain (default 8)
    --long-every N        every N-th session spans the whole chain; 0 keeps
                          all sessions on one trunk hop (default 10)
    --transport KIND      `tcp` (loopback sockets) or `channel` (in-process;
                          default tcp)
    --recovery            frame protocol packets through the ack/retransmit
                          recovery layer (off by default: both transports
                          are already reliable and FIFO per lane)
    --rto-ms N            recovery retransmission timeout in milliseconds
                          (default 200; implies --recovery)
    --settle-ms N         how long the global counters must stay frozen for
                          silence to count as measured (default 2)
    --timeout-s N         give-up bound on the join -> silent wait
                          (default 120)

`bneck node` exits 1 if any session's final rate disagrees with the
centralized max-min oracle (`mismatches` in the report) or if the cluster
never goes silent within the timeout.

The worker-thread count precedence is --threads, then BNECK_THREADS, then
all cores; reports are bit-identical at any thread count and at any engine
shard count.
";

/// Runs the CLI on the given arguments (without the program name), returning
/// the process exit code.
pub fn run_main(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..], None),
        Some("sweep") => cmd_run(&args[1..], Some("paper_scale")),
        Some("node") => cmd_node(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("bench-presets") => cmd_bench_presets(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("[bneck] unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            2
        }
        None => {
            eprint!("{USAGE}");
            2
        }
    }
}

/// Options shared by `run` and `sweep`.
struct RunOptions {
    spec: ExperimentSpec,
    json: bool,
    out: Option<String>,
    tables: bool,
    csv: bool,
    /// `--scale-curve`: path to write the performance-curve JSON to.
    scale_curve: Option<String>,
    /// `--threads`: worker-thread override (takes precedence over the
    /// `BNECK_THREADS` environment variable).
    threads: Option<usize>,
}

fn value_of(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_list<T: std::str::FromStr>(list: &str, what: &str) -> Result<Vec<T>, String> {
    list.split(',')
        .map(|s| {
            s.trim()
                .parse::<T>()
                .map_err(|_| format!("{what} takes a comma-separated list, got `{s}`"))
        })
        .collect()
}

/// Loads the spec named by `--preset` or by a positional JSON file path.
fn load_spec(args: &[String], default_preset: Option<&str>) -> Result<ExperimentSpec, String> {
    if let Some(name) = value_of(args, "--preset") {
        return ExperimentSpec::preset(&name)
            .ok_or_else(|| format!("unknown preset `{name}`; see `bneck bench-presets`"));
    }
    // The first argument that is neither a flag nor a flag's value.
    let mut positional = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if matches!(
            arg.as_str(),
            "--sessions"
                | "--shards"
                | "--threads"
                | "--repeats"
                | "--baselines"
                | "--out"
                | "--preset"
                | "--curve-out"
                | "--faults"
                | "--dup"
                | "--fault-seed"
        ) {
            i += 2; // skip the flag and its value
        } else if arg.starts_with("--") {
            i += 1;
        } else {
            positional = Some(arg);
            break;
        }
    }
    match positional {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read spec file `{path}`: {e}"))?;
            serde_json::from_str::<ExperimentSpec>(&text)
                .map_err(|e| format!("cannot parse spec file `{path}`: {e}"))
        }
        // `--faults` without a spec runs the shipped fault-sweep preset with
        // the flag's grid overrides applied.
        None if value_of(args, "--faults").is_some() => {
            Ok(ExperimentSpec::preset("faults").expect("shipped preset resolves"))
        }
        None => match default_preset {
            Some(name) => Ok(ExperimentSpec::preset(name).expect("shipped preset resolves")),
            None => Err("`bneck run` needs `--preset NAME` or a spec file".to_string()),
        },
    }
}

/// Applies the CLI overrides to the loaded spec.
fn apply_overrides(spec: &mut ExperimentSpec, args: &[String]) -> Result<(), String> {
    if let Some(list) = value_of(args, "--sessions") {
        let sessions: Vec<usize> = parse_list(&list, "--sessions")?;
        match &mut spec.experiment {
            ExperimentKind::Joins(joins) => joins.sessions = sessions,
            ExperimentKind::Scale(scale) => scale.sessions = sessions,
            ExperimentKind::FaultSweep(faults) if sessions.len() == 1 => {
                faults.sessions = sessions[0]
            }
            other => {
                return Err(format!(
                    "--sessions applies to joins/scale specs, not `{}`",
                    other.label()
                ))
            }
        }
    }
    if let Some(list) = value_of(args, "--shards") {
        let shards: Vec<usize> = parse_list(&list, "--shards")?;
        if shards.is_empty() || shards.contains(&0) {
            return Err("--shards takes positive shard counts".to_string());
        }
        match &mut spec.experiment {
            ExperimentKind::Scale(scale) => scale.shards = shards,
            other => {
                return Err(format!(
                    "--shards applies to scale specs, not `{}`",
                    other.label()
                ))
            }
        }
    }
    if let Some(value) = value_of(args, "--repeats") {
        let repeats: usize = value
            .parse()
            .map_err(|_| "--repeats takes an integer".to_string())?;
        match &mut spec.experiment {
            ExperimentKind::Churn(churn) => churn.repeats = repeats,
            other => {
                return Err(format!(
                    "--repeats applies to churn specs, not `{}`",
                    other.label()
                ))
            }
        }
    }
    if let Some(list) = value_of(args, "--baselines") {
        let baselines: Vec<String> = list.split(',').map(|s| s.trim().to_string()).collect();
        match &mut spec.experiment {
            ExperimentKind::Accuracy(accuracy) => accuracy.baselines = baselines,
            other => {
                return Err(format!(
                    "--baselines applies to accuracy specs, not `{}`",
                    other.label()
                ))
            }
        }
    }
    if args.iter().any(|a| a == "--no-validate") {
        match &mut spec.experiment {
            ExperimentKind::Scale(scale) => scale.validate = false,
            other => {
                return Err(format!(
                    "--no-validate applies to scale specs, not `{}`",
                    other.label()
                ))
            }
        }
    }
    if let Some(list) = value_of(args, "--faults") {
        let drops: Vec<f64> = parse_list(&list, "--faults")?;
        match &mut spec.experiment {
            ExperimentKind::FaultSweep(faults) => faults.drop = drops,
            other => {
                return Err(format!(
                    "--faults applies to fault-sweep specs, not `{}`",
                    other.label()
                ))
            }
        }
    }
    if let Some(list) = value_of(args, "--dup") {
        let dups: Vec<f64> = parse_list(&list, "--dup")?;
        match &mut spec.experiment {
            ExperimentKind::FaultSweep(faults) => faults.duplicate = dups,
            other => {
                return Err(format!(
                    "--dup applies to fault-sweep specs, not `{}`",
                    other.label()
                ))
            }
        }
    }
    if let Some(value) = value_of(args, "--fault-seed") {
        let seed: u64 = value
            .parse()
            .map_err(|_| "--fault-seed takes an integer".to_string())?;
        match &mut spec.experiment {
            ExperimentKind::FaultSweep(faults) => faults.fault_seed = seed,
            other => {
                return Err(format!(
                    "--fault-seed applies to fault-sweep specs, not `{}`",
                    other.label()
                ))
            }
        }
    }
    if args.iter().any(|a| a == "--no-recovery") {
        match &mut spec.experiment {
            ExperimentKind::FaultSweep(faults) => faults.with_recovery = false,
            other => {
                return Err(format!(
                    "--no-recovery applies to fault-sweep specs, not `{}`",
                    other.label()
                ))
            }
        }
    }
    Ok(())
}

fn cmd_run(args: &[String], default_preset: Option<&str>) -> i32 {
    let options = match parse_run_options(args, default_preset) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("[bneck] {message}");
            return 2;
        }
    };
    execute(options)
}

fn parse_run_options(args: &[String], default_preset: Option<&str>) -> Result<RunOptions, String> {
    let mut spec = load_spec(args, default_preset)?;
    apply_overrides(&mut spec, args)?;
    let json_flag = args.iter().any(|a| a == "--json");
    let out = value_of(args, "--out");
    if json_flag || out.is_some() {
        spec.output.json = true;
    }
    if args.iter().any(|a| a == "--no-tables") {
        spec.output.tables = false;
    }
    if args.iter().any(|a| a == "--no-csv") {
        spec.output.csv = false;
    }
    let scale_curve = if args.iter().any(|a| a == "--scale-curve") {
        if !matches!(spec.experiment, ExperimentKind::Scale(_)) {
            return Err(format!(
                "--scale-curve applies to scale specs, not `{}`",
                spec.experiment.label()
            ));
        }
        Some(value_of(args, "--curve-out").unwrap_or_else(|| "BENCH_SCALE.json".to_string()))
    } else {
        None
    };
    let threads = match value_of(args, "--threads") {
        Some(value) => Some(
            value
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| "--threads takes a positive integer".to_string())?,
        ),
        None => None,
    };
    Ok(RunOptions {
        json: json_flag,
        out,
        tables: spec.output.tables,
        csv: spec.output.csv,
        scale_curve,
        threads,
        spec,
    })
}

/// `bneck node`: the loopback-cluster demo — real worker threads, a real
/// transport, join → converged → measurably silent, rates cross-checked
/// against the centralized oracle.
fn cmd_node(args: &[String]) -> i32 {
    let spec = match parse_node_spec(args) {
        Ok(spec) => spec,
        Err(message) => {
            eprintln!("[bneck] {message}");
            return 2;
        }
    };
    eprintln!(
        "[bneck] node cluster: {} node(s), {} router(s), {} session(s) over {}",
        spec.nodes,
        spec.routers,
        spec.sessions,
        spec.transport.name()
    );
    match run_cluster(spec) {
        Ok(report) => {
            println!("{report}");
            if report.mismatches > 0 {
                eprintln!(
                    "[bneck] FAILURES: {} session(s) off the max-min oracle",
                    report.mismatches
                );
                1
            } else {
                0
            }
        }
        Err(error) => {
            eprintln!("[bneck] node cluster failed: {error}");
            1
        }
    }
}

fn parse_node_spec(args: &[String]) -> Result<ClusterSpec, String> {
    fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
        match value_of(args, name) {
            Some(value) => value
                .parse::<T>()
                .map_err(|_| format!("{name} takes a number, got `{value}`")),
            None => Ok(default),
        }
    }
    let defaults = ClusterSpec::default();
    let transport = match value_of(args, "--transport").as_deref() {
        None | Some("tcp") => ClusterTransport::Tcp,
        Some("channel") => ClusterTransport::Channel,
        Some(other) => {
            return Err(format!(
                "--transport takes `tcp` or `channel`, got `{other}`"
            ))
        }
    };
    let rto_ms = value_of(args, "--rto-ms")
        .map(|value| {
            value
                .parse::<u64>()
                .map_err(|_| format!("--rto-ms takes a number, got `{value}`"))
        })
        .transpose()?;
    let recovery = if args.iter().any(|a| a == "--recovery") || rto_ms.is_some() {
        Some(RecoveryConfig::with_rto(Delay::from_micros(
            rto_ms.unwrap_or(200).saturating_mul(1_000),
        )))
    } else {
        None
    };
    let spec = ClusterSpec {
        nodes: parsed(args, "--nodes", defaults.nodes)?,
        routers: parsed(args, "--routers", defaults.routers)?,
        sessions: parsed(args, "--sessions", defaults.sessions)?,
        long_every: parsed(args, "--long-every", defaults.long_every)?,
        transport,
        recovery,
        settle: Duration::from_millis(parsed(args, "--settle-ms", 2u64)?),
        timeout: Duration::from_secs(parsed(args, "--timeout-s", 120u64)?),
    };
    if spec.nodes == 0 || spec.sessions == 0 || spec.routers < 2 {
        return Err("`bneck node` needs --nodes >= 1, --sessions >= 1, --routers >= 2".into());
    }
    Ok(spec)
}

fn execute(options: RunOptions) -> i32 {
    let topologies = TopologyRegistry::builtin();
    let protocols = default_protocols();
    // Precedence: --threads beats BNECK_THREADS beats the machine default.
    let runner = match options.threads {
        Some(n) => SweepRunner::new(n),
        None => SweepRunner::from_env(),
    };
    eprintln!(
        "[bneck] running spec `{}` ({}) on {} worker thread(s)",
        options.spec.name,
        options.spec.experiment.label(),
        runner.threads()
    );
    let SpecOutcome {
        report,
        notes,
        timings,
    } = match run_spec(&options.spec, &topologies, &protocols, &runner) {
        Ok(outcome) => outcome,
        Err(error) => {
            eprintln!("[bneck] spec does not resolve: {error}");
            return 2;
        }
    };
    for note in &notes {
        eprintln!("[bneck] {note}");
    }

    if let Some(path) = &options.scale_curve {
        let crate::report::ExperimentReport::Scale(reports) = &report else {
            unreachable!("--scale-curve is rejected for non-scale specs at parse time");
        };
        let points: Vec<crate::runner::ScaleCurvePoint> = reports
            .iter()
            .zip(&timings)
            .map(|(report, timings)| crate::runner::ScaleCurvePoint::new(report, timings))
            .collect();
        let document = serde_json::to_value(&points).expect("infallible in the shim");
        if let Err(error) = std::fs::write(path, document.to_json_pretty()) {
            eprintln!("[bneck] cannot write scale curve to `{path}`: {error}");
            return 2;
        }
        eprintln!("[bneck] scale curve written to {path}");
    }

    let tables = render_tables(&report);
    if options.tables {
        for table in &tables {
            println!("{table}");
        }
    }
    if options.csv {
        for table in &tables {
            println!("{}", table.to_csv());
        }
    }
    if options.spec.output.json {
        let document = json_report(&options.spec, &report);
        if options.json || options.out.is_none() {
            println!("{}", document.to_json_pretty());
        }
        if let Some(path) = &options.out {
            if let Err(error) = std::fs::write(path, document.to_json_pretty()) {
                eprintln!("[bneck] cannot write report to `{path}`: {error}");
                return 2;
            }
            eprintln!("[bneck] JSON report written to {path}");
        }
    }

    let failures = report.failures();
    if failures > 0 {
        eprintln!("[bneck] FAILURES: {failures} failing runs or mismatching sessions");
        return 1;
    }
    if matches!(report, crate::report::ExperimentReport::Validation(_)) {
        println!("all runs converged to the exact max-min fair rates");
    }
    0
}

/// The machine-readable document `--json` / `--out` emit: the spec that ran
/// (overrides applied) next to its report.
fn json_report(
    spec: &ExperimentSpec,
    report: &crate::report::ExperimentReport,
) -> serde_json::Value {
    serde_json::Value::record(vec![
        (
            "spec",
            serde_json::to_value(spec).expect("infallible in the shim"),
        ),
        (
            "report",
            serde_json::to_value(report).expect("infallible in the shim"),
        ),
    ])
}

fn cmd_validate(args: &[String]) -> i32 {
    let topologies = TopologyRegistry::builtin();
    let protocols = default_protocols();
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let mut failures = 0usize;
    if paths.is_empty() {
        // No files: check every shipped preset (round-trip included, so a
        // preset that cannot survive its own serialization fails here).
        for spec in ExperimentSpec::presets() {
            match check_round_trip(&spec, &topologies, &protocols) {
                Ok(()) => println!("ok preset {}", spec.name),
                Err(message) => {
                    println!("FAIL preset {}: {message}", spec.name);
                    failures += 1;
                }
            }
        }
    }
    for path in paths {
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| {
                serde_json::from_str::<ExperimentSpec>(&text).map_err(|e| e.to_string())
            })
            .and_then(|spec| {
                spec.check(&topologies, &protocols)
                    .map_err(|e| e.to_string())
                    .map(|()| spec)
            }) {
            Ok(spec) => println!("ok {path} ({} · {})", spec.name, spec.experiment.label()),
            Err(message) => {
                println!("FAIL {path}: {message}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("[bneck] {failures} invalid spec(s)");
        1
    } else {
        0
    }
}

fn check_round_trip(
    spec: &ExperimentSpec,
    topologies: &TopologyRegistry,
    protocols: &ProtocolRegistry,
) -> Result<(), String> {
    spec.check(topologies, protocols)
        .map_err(|e| e.to_string())?;
    let text = serde_json::to_string_pretty(spec).map_err(|e| e.to_string())?;
    let back: ExperimentSpec = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    if back != *spec {
        return Err("serialization round-trip changed the spec".to_string());
    }
    Ok(())
}

fn cmd_bench_presets(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--json") {
        let specs = ExperimentSpec::presets();
        println!(
            "{}",
            serde_json::to_value(&specs)
                .expect("infallible in the shim")
                .to_json_pretty()
        );
        return 0;
    }
    let mut table = Table::new(
        "shipped experiment presets (run with `bneck run --preset NAME`)",
        &["preset", "kind", "reproduces"],
    );
    for name in PRESET_NAMES.iter().chain(std::iter::once(&PAPER_FULL)) {
        let spec = ExperimentSpec::preset(name).expect("shipped preset resolves");
        table.add_row(&[
            name.to_string(),
            spec.experiment.label().to_string(),
            ExperimentSpec::preset_summary(name)
                .expect("every preset has a summary")
                .to_string(),
        ]);
    }
    println!("{table}");
    0
}
