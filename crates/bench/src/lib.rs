//! # bneck-bench
//!
//! The experiment harness of the B-Neck reproduction. The [`runner`] module
//! contains the code that regenerates every figure of the paper's evaluation
//! section; the binaries in `src/bin/` print the corresponding series as
//! text tables, and the Criterion benchmarks in `benches/` time the key
//! building blocks.
//!
//! | Paper figure | Runner | Binary |
//! |---|---|---|
//! | Figure 5 (left, right) | [`runner::run_experiment1_point`] | `experiment1` |
//! | Figure 6 | [`runner::run_experiment2`] | `experiment2` |
//! | Figures 7 and 8 | [`runner::run_experiment3`] | `experiment3` |
//! | Correctness validation (Section IV) | [`runner::validate_scenario`] | `validate` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;

pub use runner::{
    run_experiment1_point, run_experiment2, run_experiment3, validate_scenario, Experiment1Point,
    Experiment2PhaseResult, Experiment3Result, Experiment3Sample, ValidationReport,
};
