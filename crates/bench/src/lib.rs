//! # bneck-bench
//!
//! The experiment harness of the B-Neck reproduction. The [`runner`] module
//! contains the code that regenerates every figure of the paper's evaluation
//! section; the binaries in `src/bin/` print the corresponding series as
//! text tables, and the Criterion benchmarks in `benches/` time the key
//! building blocks.
//!
//! | Paper figure | Runner | Binary |
//! |---|---|---|
//! | Figure 5 (left, right) | [`runner::run_experiment1_point`] / [`runner::run_experiment1_sweep`] | `experiment1` |
//! | Figure 6 | [`runner::run_experiment2`] / [`runner::run_experiment2_repeats`] | `experiment2` |
//! | Figures 7 and 8 | [`runner::run_experiment3_with`] | `experiment3` |
//! | Correctness validation (Section IV) | [`runner::run_validation_sweep`] | `validate` |
//!
//! Every runner drives its protocols through the unified
//! `ProtocolWorld`/`Simulation` traits, and the sweep-level entry points fan
//! independent points across worker threads with [`sweep::SweepRunner`]
//! (thread count from `BNECK_THREADS`, bit-identical reports at any count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
pub mod sweep;

pub use runner::{
    build_protocol, run_experiment1_point, run_experiment1_sweep, run_experiment2,
    run_experiment2_repeats, run_experiment3, run_experiment3_with, run_validation_sweep,
    validate_scenario, Experiment1Point, Experiment2PhaseResult, Experiment2Run, Experiment3Result,
    Experiment3Sample, ValidationPoint, ValidationReport,
};
pub use sweep::SweepRunner;
