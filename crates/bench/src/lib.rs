//! # bneck-bench
//!
//! The experiment harness of the B-Neck reproduction. The [`runner`] module
//! contains the code that regenerates every figure of the paper's evaluation
//! section; the [`report`] module executes declarative
//! [`ExperimentSpec`](bneck_workload::spec::ExperimentSpec)s into typed,
//! serializable [`report::ExperimentReport`]s; and the [`cli`] module is the
//! one `bneck` binary that drives it all (`run`, `sweep`, `validate`,
//! `bench-presets`). The Criterion benchmarks in `benches/` time the key
//! building blocks.
//!
//! | Paper figure | Runner | Spec preset |
//! |---|---|---|
//! | Figure 5 (left, right) | [`runner::run_experiment1_point`] / [`runner::run_experiment1_sweep`] | `exp1`, `exp1_full` |
//! | Figure 6 | [`runner::run_experiment2`] / [`runner::run_experiment2_repeats`] | `exp2`, `exp2_full` |
//! | Figures 7 and 8 | [`runner::run_experiment3_registry`] | `exp3`, `exp3_full` |
//! | Correctness validation (Section IV) | [`runner::run_validation_sweep`] | `validate` |
//! | 300k-session scale points (Figure 5) | [`runner::run_scale_sweep`] | `paper_scale`, `paper_full` |
//!
//! Every runner drives its protocols through the unified
//! `ProtocolWorld`/`Simulation` traits (names resolved by the
//! [`runner::default_protocols`] registry), and the sweep-level entry points
//! fan independent points across worker threads with [`sweep::SweepRunner`]
//! (thread count from `BNECK_THREADS`, bit-identical reports at any count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "serde")]
pub mod cli;
pub mod report;
pub mod runner;
pub mod sweep;

pub use report::{render_tables, run_spec, ExperimentReport, SpecOutcome};
pub use runner::{
    build_protocol, default_protocols, fault_point_configs, run_experiment1_point,
    run_experiment1_sweep, run_experiment2, run_experiment2_repeats, run_experiment3,
    run_experiment3_registry, run_experiment3_with, run_fault_point, run_fault_sweep,
    run_scale_point, run_scale_sweep, run_validation_sweep, validate_scenario, ChannelFaultSummary,
    Experiment1Point, Experiment2PhaseResult, Experiment2Run, Experiment3Result, Experiment3Sample,
    FaultOutcome, FaultPointConfig, FaultPointReport, FaultRunResult, ScaleReport, ScaleRun,
    ValidationPoint, ValidationReport,
};
pub use sweep::SweepRunner;
