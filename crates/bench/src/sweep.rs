//! The parallel sweep driver: fans independent experiment points across
//! worker threads with bit-identical results at any thread count.
//!
//! Every experiment of the paper's evaluation decomposes into *points* that
//! share nothing — a (scenario, session-count) cell of Experiment 1, a seed
//! repeat of Experiment 2, a protocol of Experiment 3, a (scenario, seed)
//! validation run. Each point builds its own network, schedule and
//! simulation (a `Send` unit, see [`bneck_sim::Simulation`]), so the runner
//! can execute points on any thread in any order.
//!
//! Determinism is by construction: a point's result depends only on the
//! point itself (whose RNG seeds derive from its index in the sweep, never
//! from a thread id or global state), and results are returned in sweep
//! order regardless of which worker finished first. The determinism guard in
//! `crates/bench/tests/determinism.rs` asserts this by running the same
//! sweeps at 1 and N threads and comparing the reports.
//!
//! The thread count comes from the `BNECK_THREADS` environment variable when
//! set (the knob CI's `scale-smoke` job uses), otherwise from
//! [`std::thread::available_parallelism`].

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Runs closures over the points of a sweep on a fixed-size pool of scoped
/// worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// A runner with exactly `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
        }
    }

    /// A runner honoring the `BNECK_THREADS` environment variable, falling
    /// back to the machine's available parallelism.
    #[allow(clippy::disallowed_methods)] // mirrored by the xlint DET002 allow below
    pub fn from_env() -> Self {
        Self::new(parse_threads(
            // xlint: allow(DET002, reason = "thread count selects scheduling only; results are bit-identical at any value (determinism suite)")
            std::env::var("BNECK_THREADS").ok().as_deref(),
        ))
    }

    /// The number of worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every point, fanning the points across the worker
    /// threads, and returns the results in point order.
    ///
    /// `f` receives the point's index within the sweep (derive per-point
    /// seeds from it, never from the executing thread) and the point itself.
    /// Work is claimed dynamically, so long points do not serialize behind
    /// short ones; the result order is the input order regardless.
    pub fn run<T, R, F>(&self, points: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = points.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return points
                .into_iter()
                .enumerate()
                .map(|(i, p)| f(i, p))
                .collect();
        }
        // Each point sits behind its own mutex so a worker can take it by
        // value; the atomic cursor hands out indices dynamically.
        let jobs: Vec<Mutex<Option<T>>> = points.into_iter().map(|p| Mutex::new(Some(p))).collect();
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let jobs = &jobs;
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let point = jobs[i]
                        .lock()
                        .expect("a sweep worker panicked while claiming a point")
                        .take()
                        .expect("every point is claimed exactly once");
                    let result = f(i, point);
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, result) in rx {
                results[i] = Some(result);
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every point delivers exactly one result"))
            .collect()
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Parses a `BNECK_THREADS` value; `None`, empty or unparsable values fall
/// back to the available parallelism.
fn parse_threads(value: Option<&str>) -> usize {
    match value.map(str::trim) {
        Some(v) if !v.is_empty() => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available(),
        },
        _ => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_point_order() {
        let points: Vec<usize> = (0..57).collect();
        for threads in [1, 2, 8, 64] {
            let out = SweepRunner::new(threads).run(points.clone(), |i, p| {
                assert_eq!(i, p, "index matches the point's sweep position");
                p * p
            });
            assert_eq!(out, points.iter().map(|p| p * p).collect::<Vec<_>>());
        }
    }

    #[test]
    fn thread_count_does_not_change_the_results() {
        // A "computation" whose result depends only on the point index.
        let work = |i: usize, seed: u64| -> u64 {
            let mut x = seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            for _ in 0..1000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            x
        };
        let points: Vec<u64> = (0..23).map(|i| i * 31).collect();
        let serial = SweepRunner::new(1).run(points.clone(), work);
        let parallel = SweepRunner::new(7).run(points.clone(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_sweeps_work() {
        let none: Vec<u8> = Vec::new();
        assert!(SweepRunner::new(4).run(none, |_, p| p).is_empty());
        assert_eq!(
            SweepRunner::new(4).run(vec![9u8], |i, p| (i, p)),
            vec![(0, 9)]
        );
    }

    #[test]
    fn thread_knob_parsing() {
        assert_eq!(parse_threads(Some("3")), 3);
        assert_eq!(parse_threads(Some(" 12 ")), 12);
        assert_eq!(SweepRunner::new(0).threads(), 1, "clamped to one worker");
        // Unset, empty, zero and junk all fall back to the machine default.
        let fallback = available();
        assert_eq!(parse_threads(None), fallback);
        assert_eq!(parse_threads(Some("")), fallback);
        assert_eq!(parse_threads(Some("0")), fallback);
        assert_eq!(parse_threads(Some("lots")), fallback);
    }
}
