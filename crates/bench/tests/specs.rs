//! Spec round-trip and golden-fixture guard.
//!
//! Every shipped preset must (a) serialize → deserialize → compare equal,
//! and (b) serialize to exactly the JSON pinned under `tests/specs/` — the
//! fixtures are the compatibility contract of the spec format. When a format
//! or preset change is intentional, regenerate the fixtures with:
//!
//! ```text
//! BNECK_REGEN_SPECS=1 cargo test -p bneck-bench --test specs
//! ```
//!
//! (Object keys keep struct-field declaration order in the offline serde
//! shim; real `serde_json` would sort map keys but structs serialize in
//! field order there too, so the fixtures survive a swap to the real
//! crates.)

#![cfg(feature = "serde")]

use bneck_bench::default_protocols;
use bneck_workload::registry::TopologyRegistry;
use bneck_workload::spec::{ExperimentSpec, PAPER_FULL, PRESET_NAMES};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/specs")
}

fn all_preset_names() -> Vec<&'static str> {
    PRESET_NAMES
        .iter()
        .chain(std::iter::once(&PAPER_FULL))
        .copied()
        .collect()
}

#[test]
fn every_preset_round_trips_through_json() {
    for name in all_preset_names() {
        let spec = ExperimentSpec::preset(name).expect("shipped preset resolves");
        let text = serde_json::to_string_pretty(&spec).expect("serialization is infallible");
        let back: ExperimentSpec = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("preset {name} does not deserialize: {e}"));
        assert_eq!(back, spec, "round-trip changed preset {name}");
        // Compact form round-trips too.
        let compact = serde_json::to_string(&spec).expect("serialization is infallible");
        let back: ExperimentSpec = serde_json::from_str(&compact).unwrap();
        assert_eq!(back, spec);
    }
}

#[test]
#[allow(clippy::disallowed_methods)] // BNECK_REGEN_SPECS opts into rewriting fixtures; never affects results
fn golden_fixtures_pin_the_spec_format() {
    let dir = fixture_dir();
    let regen = std::env::var_os("BNECK_REGEN_SPECS").is_some();
    if regen {
        std::fs::create_dir_all(&dir).expect("create fixture dir");
    }
    for name in all_preset_names() {
        let spec = ExperimentSpec::preset(name).expect("shipped preset resolves");
        let text = serde_json::to_string_pretty(&spec).expect("serialization is infallible");
        let path = dir.join(format!("{name}.json"));
        if regen {
            std::fs::write(&path, &text).expect("write fixture");
            continue;
        }
        let pinned = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        assert_eq!(
            text, pinned,
            "preset {name} no longer serializes to its pinned fixture \
             (BNECK_REGEN_SPECS=1 regenerates after an intentional change)"
        );
        // The pinned document deserializes back to the preset.
        let back: ExperimentSpec = serde_json::from_str(&pinned).unwrap();
        assert_eq!(back, spec);
    }
}

#[test]
fn every_fixture_file_is_a_shipped_preset_and_checks() {
    let topologies = TopologyRegistry::builtin();
    let protocols = default_protocols();
    let names = all_preset_names();
    let mut seen = 0usize;
    for entry in std::fs::read_dir(fixture_dir()).expect("fixture dir exists") {
        let path = entry.expect("read dir entry").path();
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 fixture name")
            .to_string();
        assert!(
            names.contains(&stem.as_str()),
            "stray fixture {} has no matching preset",
            path.display()
        );
        let spec: ExperimentSpec =
            serde_json::from_str(&std::fs::read_to_string(&path).expect("read fixture"))
                .unwrap_or_else(|e| panic!("fixture {} does not parse: {e}", path.display()));
        spec.check(&topologies, &protocols)
            .unwrap_or_else(|e| panic!("fixture {} does not check: {e}", path.display()));
        seen += 1;
    }
    assert_eq!(seen, names.len(), "one fixture per shipped preset");
}
