//! Determinism guard: the parallel sweep driver must produce bit-identical
//! reports regardless of its thread count.
//!
//! Every experiment point owns its RNG (seeded from the point, whose seed in
//! turn derives from the point's index in the sweep), builds its own network
//! and simulation, and shares nothing mutable with other points — so running
//! a sweep on 1 thread and on N threads must yield *equal* results, not
//! merely statistically similar ones. These tests pin that property for all
//! four sweep-level runners.

use bneck_bench::{
    fault_point_configs, run_experiment1_sweep, run_experiment2_repeats, run_experiment3_with,
    run_fault_sweep, run_validation_sweep, SweepRunner, ValidationPoint,
};
use bneck_net::Delay;
use bneck_workload::{Experiment1Config, Experiment2Config, Experiment3Config, NetworkScenario};

#[test]
fn experiment1_sweep_is_bit_identical_at_any_thread_count() {
    let configs: Vec<Experiment1Config> = [(20usize, 1u64), (35, 2), (50, 3), (20, 4)]
        .iter()
        .map(|&(sessions, seed)| {
            let mut config =
                Experiment1Config::scaled(NetworkScenario::small_lan(2 * sessions + 10), sessions);
            config.seed = seed;
            config
        })
        .collect();
    let serial = run_experiment1_sweep(configs.clone(), &SweepRunner::new(1));
    for threads in [2, 4, 16] {
        let parallel = run_experiment1_sweep(configs.clone(), &SweepRunner::new(threads));
        assert_eq!(
            serial, parallel,
            "{threads}-thread sweep diverged from the serial one"
        );
    }
    assert!(serial.iter().all(|p| p.validated));
}

#[test]
fn experiment2_repeats_are_bit_identical_at_any_thread_count() {
    let base = Experiment2Config {
        scenario: NetworkScenario::small_lan(140),
        initial_sessions: 40,
        churn: 10,
        ..Experiment2Config::scaled()
    };
    let serial = run_experiment2_repeats(&base, 3, &SweepRunner::new(1));
    let parallel = run_experiment2_repeats(&base, 3, &SweepRunner::new(4));
    assert_eq!(serial, parallel);
    // Distinct seeds really produce distinct workloads (the repeats are not
    // accidentally clones of one run).
    assert_eq!(serial[0].seed + 1, serial[1].seed);
    assert!(serial.iter().all(|r| r.phases.iter().all(|p| p.validated)));
}

#[test]
fn experiment3_protocol_cells_are_bit_identical_at_any_thread_count() {
    let config = Experiment3Config {
        scenario: NetworkScenario::small_lan(100),
        joins: 25,
        leaves: 3,
        horizon: Delay::from_millis(30),
        ..Experiment3Config::scaled()
    };
    let serial = run_experiment3_with(&config, &["BFYZ", "CG", "RCP"], &SweepRunner::new(1));
    let parallel = run_experiment3_with(&config, &["BFYZ", "CG", "RCP"], &SweepRunner::new(4));
    assert_eq!(serial, parallel);
    assert_eq!(serial[0].protocol, "B-Neck");
}

#[test]
fn validation_sweep_is_bit_identical_at_any_thread_count() {
    let mut points = Vec::new();
    for (i, scenario) in [
        NetworkScenario::small_lan(60),
        NetworkScenario::small_wan(60),
    ]
    .into_iter()
    .enumerate()
    {
        for seed in 0..3u64 {
            points.push(ValidationPoint {
                scenario: scenario.with_seed(seed + 1),
                sessions: 20,
                seed: 100 + i as u64 * 10 + seed,
            });
        }
    }
    let serial = run_validation_sweep(points.clone(), &SweepRunner::new(1));
    let parallel = run_validation_sweep(points, &SweepRunner::new(3));
    assert_eq!(serial, parallel);
    assert!(serial
        .iter()
        .all(|r| r.mismatches == 0 && r.violations == 0));
}

#[test]
fn fault_sweep_is_bit_identical_at_any_thread_count_and_repeat() {
    let spec = bneck_workload::FaultSweepSpec {
        topology: bneck_workload::ScenarioSpec::new("small/lan", 20),
        sessions: 8,
        join_window_us: 1_000,
        limits: bneck_workload::LimitPolicy::Unlimited,
        workload_seed: 1,
        fault_seed: 42,
        drop: vec![0.0, 0.02, 0.05],
        duplicate: vec![0.0, 0.01],
        reorder: 0.25,
        reorder_window: 4,
        with_recovery: true,
        rto_us: 500,
        horizon_ms: 200,
    };
    let configs = fault_point_configs(&spec, NetworkScenario::small_lan(20)).unwrap();
    let serial = run_fault_sweep(configs.clone(), &SweepRunner::new(1));
    for threads in [2, 4, 16] {
        let parallel = run_fault_sweep(configs.clone(), &SweepRunner::new(threads));
        assert_eq!(
            serial, parallel,
            "{threads}-thread fault sweep diverged from the serial one"
        );
    }
    // Repeating the serial run reproduces it bit for bit: every fault roll
    // derives from the per-cell seed, never from ambient state.
    let again = run_fault_sweep(configs, &SweepRunner::new(1));
    assert_eq!(serial, again, "a repeated fault sweep diverged");
    assert!(serial.iter().all(|r| r.ok()));
}

// ---------------------------------------------------------------------------
// Spec-path equivalence: `bneck run` on the preset specs must produce reports
// bit-identical to the direct PR 4 runner entry points (the specs are a
// declarative frontend over the same engine, not a parallel implementation).
// ---------------------------------------------------------------------------

#[cfg(feature = "serde")]
mod spec_equivalence {
    use super::*;
    use bneck_bench::{default_protocols, run_spec, ExperimentReport};
    use bneck_workload::registry::TopologyRegistry;
    use bneck_workload::spec::{ExperimentKind, ExperimentSpec};

    /// The exp1 preset runs the same simulations as the former `experiment1`
    /// binary's construction loop fed to `run_experiment1_sweep`. The session
    /// sweep is trimmed to keep the test fast; the trim goes through the same
    /// `--sessions` override path the CLI exposes.
    #[test]
    fn exp1_preset_report_matches_the_direct_runner() {
        let mut spec = ExperimentSpec::preset("exp1").unwrap();
        let ExperimentKind::Joins(joins) = &mut spec.experiment else {
            panic!("exp1 is a joins sweep");
        };
        joins.sessions = vec![10, 25];

        // What the former binary built for this sweep: seed = position + 1,
        // hosts = (2 * sessions).max(20), over the same three scenarios.
        let mut configs = Vec::new();
        let scenarios: Vec<fn(usize) -> NetworkScenario> = vec![
            NetworkScenario::small_lan,
            NetworkScenario::small_wan,
            NetworkScenario::medium_lan,
        ];
        for make_scenario in &scenarios {
            for &sessions in &[10usize, 25] {
                let hosts = (2 * sessions).max(20);
                let mut config = Experiment1Config::scaled(make_scenario(hosts), sessions);
                config.seed = configs.len() as u64 + 1;
                configs.push(config);
            }
        }
        let direct = run_experiment1_sweep(configs, &SweepRunner::new(1));

        let topologies = TopologyRegistry::builtin();
        let protocols = default_protocols();
        for threads in [1, 4] {
            let outcome =
                run_spec(&spec, &topologies, &protocols, &SweepRunner::new(threads)).unwrap();
            let ExperimentReport::Joins(points) = outcome.report else {
                panic!("joins spec produces a joins report");
            };
            assert_eq!(
                points, direct,
                "spec path diverged from the direct runner at {threads} thread(s)"
            );
        }
    }

    /// Scale reports must come out byte-identical with session planning at
    /// 1, 2 and 4 worker threads — through the direct sweep runner and the
    /// spec path alike, with same-link event batching active in the engine
    /// (it always is in `run_until`). The planner reads `BNECK_THREADS`, the
    /// sweep runner takes its count explicitly; both are varied together.
    #[test]
    fn scale_reports_are_byte_identical_at_planner_threads_1_2_4() {
        let mut spec = ExperimentSpec::preset("paper_scale").unwrap();
        let ExperimentKind::Scale(scale) = &mut spec.experiment else {
            panic!("paper_scale is a scale spec");
        };
        scale.sessions = vec![300, 500];

        let topologies = TopologyRegistry::builtin();
        let protocols = default_protocols();
        let mut sweep_bytes = Vec::new();
        let mut spec_bytes = Vec::new();
        for threads in [1usize, 2, 4] {
            std::env::set_var("BNECK_THREADS", threads.to_string());
            let configs = vec![
                Experiment1Config::paper_scale(300),
                Experiment1Config::paper_scale(500),
            ];
            let runs =
                bneck_bench::run_scale_sweep(configs, true, &[1], &SweepRunner::new(threads));
            assert!(runs.iter().all(|r| r.report.ok()));
            let reports: Vec<_> = runs.into_iter().map(|r| r.report).collect();
            sweep_bytes.push(
                serde_json::to_value(&reports)
                    .expect("infallible in the shim")
                    .to_json_pretty(),
            );

            let outcome =
                run_spec(&spec, &topologies, &protocols, &SweepRunner::new(threads)).unwrap();
            let ExperimentReport::Scale(spec_reports) = &outcome.report else {
                panic!("scale spec produces a scale report");
            };
            assert_eq!(spec_reports, &reports, "spec path diverged at {threads}");
            spec_bytes.push(
                serde_json::to_value(&outcome.report)
                    .expect("infallible in the shim")
                    .to_json_pretty(),
            );
        }
        std::env::remove_var("BNECK_THREADS");
        assert!(
            sweep_bytes.iter().all(|b| b == &sweep_bytes[0]),
            "sweep-path report bytes differ across planner thread counts"
        );
        assert!(
            spec_bytes.iter().all(|b| b == &spec_bytes[0]),
            "spec-path report bytes differ across planner thread counts"
        );
    }

    /// The tentpole determinism contract of the sharded engine: the same
    /// paper-scale point run at 1, 2, 4 and 8 engine shards must serialize
    /// to byte-identical scale reports (only the timings — `shards`,
    /// `shard_events`, wall clocks — may differ).
    #[test]
    fn scale_reports_are_byte_identical_at_shards_1_2_4_8() {
        let shards = [1usize, 2, 4, 8];
        let runs = bneck_bench::run_scale_sweep(
            vec![Experiment1Config::paper_scale(400)],
            true,
            &shards,
            &SweepRunner::new(2),
        );
        assert_eq!(runs.len(), shards.len());
        let bytes: Vec<String> = runs
            .iter()
            .map(|r| {
                serde_json::to_value(&r.report)
                    .expect("infallible in the shim")
                    .to_json_pretty()
            })
            .collect();
        for (i, b) in bytes.iter().enumerate() {
            assert_eq!(
                b, &bytes[0],
                "report bytes at {} shards differ from serial",
                shards[i]
            );
        }
        for (run, &k) in runs.iter().zip(&shards) {
            assert!(run.report.ok(), "run at {k} shards failed");
            assert_eq!(run.timings.shards, k);
            assert_eq!(run.timings.shard_events.len(), k);
            assert_eq!(
                run.timings.shard_events.iter().sum::<u64>(),
                run.report.events_processed,
                "per-shard event counts must sum to the total at {k} shards"
            );
        }
    }

    /// The same contract under an active fault plan: injected drops,
    /// duplicates and delays are keyed per channel (owned by exactly one
    /// shard), so a faulty horizon-bounded run serializes identically at
    /// any shard count.
    #[test]
    fn sharded_scale_runs_are_byte_identical_under_faults() {
        use bneck_core::{BneckConfig, BneckSimulation, ShardedBneckSimulation};
        use bneck_sim::{FaultPlan, SimTime};

        let config = Experiment1Config::paper_scale(150);
        let network = config.scenario.build();
        let schedule = config.schedule(&network);
        let horizon = SimTime::from_millis(40);
        let plan = FaultPlan::new(77, 0.02, 0.01, 0.05, 2);

        let (serial_stats, serial_report, serial_allocation) = {
            let mut sim = BneckSimulation::new(&network, BneckConfig::default());
            sim.set_fault_plan(plan);
            let stats = schedule.apply(&mut sim);
            let report = sim.run_until(horizon);
            (stats, report, sim.allocation())
        };
        let serial_bytes = serde_json::to_value(&serial_report)
            .expect("infallible in the shim")
            .to_json_pretty();
        for shards in [2usize, 4, 8] {
            let mut sim = ShardedBneckSimulation::new(&network, BneckConfig::default(), shards);
            sim.set_fault_plan(plan);
            let stats = schedule.apply(&mut sim);
            let report = sim.run_until(horizon);
            assert_eq!(stats, serial_stats, "apply stats at {shards} shards");
            let bytes = serde_json::to_value(&report)
                .expect("infallible in the shim")
                .to_json_pretty();
            assert_eq!(
                bytes, serial_bytes,
                "faulty report bytes at {shards} shards differ from serial"
            );
            assert_eq!(
                sim.allocation(),
                serial_allocation,
                "allocation at {shards} shards"
            );
        }
    }

    /// The validate preset runs the same points as the former `validate`
    /// binary (sessions trimmed via the spec, as `--sessions` would).
    #[test]
    fn validate_preset_report_matches_the_direct_runner() {
        let mut spec = ExperimentSpec::preset("validate").unwrap();
        let ExperimentKind::Validation(validation) = &mut spec.experiment else {
            panic!("validate is a validation spec");
        };
        validation.sessions = 25;
        validation.runs = 2;

        // What the former binary built: scenario seeds 1..=runs, workload
        // seeds 100.., hosts = 2 * sessions, over four scenario flavours.
        let sessions = 25;
        let mut points = Vec::new();
        for scenario in [
            NetworkScenario::small_lan(2 * sessions),
            NetworkScenario::small_wan(2 * sessions),
            NetworkScenario::medium_lan(2 * sessions),
            NetworkScenario::medium_wan(2 * sessions),
        ] {
            for seed in 0..2u64 {
                points.push(ValidationPoint {
                    scenario: scenario.with_seed(seed + 1),
                    sessions,
                    seed: seed + 100,
                });
            }
        }
        let direct = run_validation_sweep(points, &SweepRunner::new(1));

        let topologies = TopologyRegistry::builtin();
        let protocols = default_protocols();
        for threads in [1, 4] {
            let outcome =
                run_spec(&spec, &topologies, &protocols, &SweepRunner::new(threads)).unwrap();
            let ExperimentReport::Validation(reports) = outcome.report else {
                panic!("validation spec produces a validation report");
            };
            assert_eq!(
                reports, direct,
                "spec path diverged from the direct runner at {threads} thread(s)"
            );
        }
    }
}
