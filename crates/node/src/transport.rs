//! The byte-moving layer under the node runtime: a small [`Transport`] trait
//! and its two implementations.
//!
//! A transport connects `N + 1` endpoints — one per node plus a coordinator —
//! each addressed by index. Frames are opaque byte strings (the codec's
//! length-prefixed frames); a transport promises per-sender-per-peer FIFO
//! order and nothing else, which is exactly the substrate the runtime needs:
//! every reliability lane has a single sending task on a single thread, so
//! per-connection FIFO implies per-lane FIFO.
//!
//! * [`channel_mesh`] — in-process [`std::sync::mpsc`] channels. Reliable,
//!   allocation-cheap, and free of socket nondeterminism: the e2e tests run
//!   on it.
//! * [`tcp_mesh`] — real `std::net` loopback sockets, one listener per
//!   endpoint, lazily dialled outbound connections with `TCP_NODELAY`, and a
//!   per-connection reader thread that reassembles length-prefixed frames.
//!   The cluster demo runs on it.

use crate::codec::{LEN_PREFIX, MAX_FRAME_LEN};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One endpoint of a frame-moving mesh.
///
/// `Send` so an endpoint can move onto its node's thread; object-safe so the
/// runtime can hold `Box<dyn Transport>` and stay independent of the wire.
pub trait Transport: Send {
    /// Sends one complete frame to endpoint `peer`.
    fn send_to(&mut self, peer: usize, frame: &[u8]) -> io::Result<()>;

    /// Receives the next frame addressed to this endpoint, waiting at most
    /// `timeout`. `Ok(None)` means the wait elapsed (or every peer is gone)
    /// with nothing to deliver.
    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>>;
}

/// An endpoint of an in-process channel mesh (see [`channel_mesh`]).
pub struct ChannelEndpoint {
    senders: Vec<Sender<Vec<u8>>>,
    inbox: Receiver<Vec<u8>>,
}

/// Builds a fully connected in-process mesh of `endpoints` endpoints.
pub fn channel_mesh(endpoints: usize) -> Vec<ChannelEndpoint> {
    let mut senders = Vec::with_capacity(endpoints);
    let mut inboxes = Vec::with_capacity(endpoints);
    for _ in 0..endpoints {
        let (tx, rx) = mpsc::channel();
        senders.push(tx);
        inboxes.push(rx);
    }
    inboxes
        .into_iter()
        .map(|inbox| ChannelEndpoint {
            senders: senders.clone(),
            inbox,
        })
        .collect()
}

impl Transport for ChannelEndpoint {
    fn send_to(&mut self, peer: usize, frame: &[u8]) -> io::Result<()> {
        self.senders[peer]
            .send(frame.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer endpoint dropped"))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>> {
        match self.inbox.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            // Every sender gone means every peer exited; report "nothing" and
            // let the runtime's own shutdown protocol decide when to stop.
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => Ok(None),
        }
    }
}

/// An endpoint of a TCP loopback mesh (see [`tcp_mesh`]).
///
/// Inbound: an acceptor thread takes connections on this endpoint's listener
/// and spawns one reader thread per connection; readers reassemble frames and
/// feed a single inbox channel. Outbound: one lazily dialled stream per peer.
pub struct TcpEndpoint {
    peers: Vec<SocketAddr>,
    outbound: Vec<Option<TcpStream>>,
    inbox: Receiver<Vec<u8>>,
    listen_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

/// Builds a fully connected mesh of `endpoints` endpoints over 127.0.0.1
/// sockets with ephemeral ports. Connections are dialled on first send.
pub fn tcp_mesh(endpoints: usize) -> io::Result<Vec<TcpEndpoint>> {
    let listeners: Vec<TcpListener> = (0..endpoints)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)))
        .collect::<io::Result<_>>()?;
    let peers: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr())
        .collect::<io::Result<_>>()?;
    let mut mesh = Vec::with_capacity(endpoints);
    for (index, listener) in listeners.into_iter().enumerate() {
        let (tx, inbox) = mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("bneck-accept-{index}"))
                .spawn(move || accept_loop(listener, tx, stop))
                .expect("spawn acceptor thread")
        };
        mesh.push(TcpEndpoint {
            peers: peers.clone(),
            outbound: (0..endpoints).map(|_| None).collect(),
            inbox,
            listen_addr: peers[index],
            stop,
            acceptor: Some(acceptor),
        });
    }
    Ok(mesh)
}

fn accept_loop(listener: TcpListener, tx: Sender<Vec<u8>>, stop: Arc<AtomicBool>) {
    let mut readers = 0usize;
    while let Ok((stream, _)) = listener.accept() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let tx = tx.clone();
        readers += 1;
        // Readers are detached: they exit on EOF when the peer closes its
        // outbound stream, or when the inbox is dropped.
        let _ = std::thread::Builder::new()
            .name(format!("bneck-read-{readers}"))
            .spawn(move || read_loop(stream, tx));
    }
}

/// Reassembles length-prefixed frames off one connection and forwards each
/// (prefix included) to the endpoint's inbox. A frame whose prefix exceeds
/// [`MAX_FRAME_LEN`] is forwarded as just its prefix — the decoder turns it
/// into a typed error — and the connection is abandoned, since the stream
/// can no longer be framed.
fn read_loop(mut stream: TcpStream, tx: Sender<Vec<u8>>) {
    let mut prefix = [0u8; LEN_PREFIX];
    loop {
        if stream.read_exact(&mut prefix).is_err() {
            return; // EOF or reset: the peer is done sending.
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            let _ = tx.send(prefix.to_vec());
            return;
        }
        let mut frame = vec![0u8; LEN_PREFIX + len];
        frame[..LEN_PREFIX].copy_from_slice(&prefix);
        if stream.read_exact(&mut frame[LEN_PREFIX..]).is_err() {
            return;
        }
        if tx.send(frame).is_err() {
            return; // The endpoint was dropped; stop reading.
        }
    }
}

impl Transport for TcpEndpoint {
    fn send_to(&mut self, peer: usize, frame: &[u8]) -> io::Result<()> {
        if self.outbound[peer].is_none() {
            let stream = TcpStream::connect(self.peers[peer])?;
            // Frames are tiny control packets; coalescing them behind Nagle
            // would serialize the whole protocol on ack round trips.
            stream.set_nodelay(true)?;
            self.outbound[peer] = Some(stream);
        }
        let stream = self.outbound[peer].as_mut().expect("dialled above");
        match stream.write_all(frame) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Drop the broken stream so a later send can redial.
                self.outbound[peer] = None;
                Err(e)
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>> {
        match self.inbox.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => Ok(None),
        }
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        // Close outbound streams first so peers' readers see EOF and exit,
        // then stop the acceptor: flag it and dial the listener once to wake
        // it out of `accept`.
        for stream in &mut self.outbound {
            *stream = None;
        }
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.listen_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(bytes: &[u8]) -> Vec<u8> {
        let mut f = (bytes.len() as u32).to_le_bytes().to_vec();
        f.extend_from_slice(bytes);
        f
    }

    #[test]
    fn channel_mesh_delivers_in_order() {
        let mut mesh = channel_mesh(3);
        let mut b = mesh.remove(1);
        let mut a = mesh.remove(0);
        a.send_to(1, &frame(b"first")).unwrap();
        a.send_to(1, &frame(b"second")).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap(),
            Some(frame(b"first"))
        );
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap(),
            Some(frame(b"second"))
        );
        assert_eq!(b.recv_timeout(Duration::from_millis(1)).unwrap(), None);
    }

    #[test]
    fn tcp_mesh_round_trips_both_directions() {
        let mut mesh = tcp_mesh(2).unwrap();
        let mut b = mesh.remove(1);
        let mut a = mesh.remove(0);
        a.send_to(1, &frame(b"ping")).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(5)).unwrap(),
            Some(frame(b"ping"))
        );
        b.send_to(0, &frame(b"pong")).unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_secs(5)).unwrap(),
            Some(frame(b"pong"))
        );
    }

    #[test]
    fn tcp_mesh_preserves_per_connection_order() {
        let mut mesh = tcp_mesh(2).unwrap();
        let mut b = mesh.remove(1);
        let mut a = mesh.remove(0);
        for i in 0u32..100 {
            a.send_to(1, &frame(&i.to_le_bytes())).unwrap();
        }
        for i in 0u32..100 {
            let got = b.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
            assert_eq!(got, frame(&i.to_le_bytes()), "frame {i} out of order");
        }
    }

    #[test]
    fn tcp_endpoints_tear_down_cleanly() {
        let mesh = tcp_mesh(4).unwrap();
        drop(mesh); // Must not hang on acceptor or reader threads.
    }
}
