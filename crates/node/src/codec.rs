//! The wire codec: a compact, versioned binary format for everything that
//! crosses a node boundary.
//!
//! A frame on the wire is a 4-byte little-endian length prefix followed by a
//! payload of exactly that many bytes:
//!
//! ```text
//! [len: u32 LE] [version: u8] [from: u16 LE] [tag: u8] [body...]
//! ```
//!
//! `from` is the index of the sending node (the coordinator uses the index
//! one past the last node). The tag selects a [`WireFrame`] variant; the body
//! is a fixed-width field sequence — `u32`/`u64` little-endian for
//! identifiers and sequence numbers, IEEE-754 bit patterns for rates (so
//! every value, including infinities, round-trips exactly), one byte for
//! enums and booleans.
//!
//! Decoding is total: [`decode_frame`] returns a typed [`DecodeError`] for
//! truncated, oversized, trailing-garbage or out-of-range input and never
//! panics. The only semantic validation is on [`RateLimit`] fields, whose
//! constructor rejects non-finite or non-positive demands; the codec checks
//! the range itself and reports [`DecodeError::InvalidRateLimit`] instead of
//! letting the constructor panic on hostile bytes.

use bneck_core::packet::{Packet, ResponseKind};
use bneck_maxmin::{RateLimit, SessionId};
use bneck_net::LinkId;
use std::fmt;

/// The only wire format version this build speaks.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a frame payload. The largest legitimate payload (a
/// sequenced `Data` frame carrying a `Response`) is under 64 bytes; anything
/// bigger is garbage and is rejected before any allocation happens.
pub const MAX_FRAME_LEN: usize = 1024;

/// Bytes of the length prefix in front of every frame payload.
pub const LEN_PREFIX: usize = 4;

/// The receiving task of a routed frame, mirroring the harness's internal
/// `Target`: a session slot's source task, a session slot's destination
/// task, or the `RouterLink` task of a directed link (with the slot's hop
/// index along the path, so the receiver can forward without a path lookup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeTarget {
    /// The source task of session slot `0`'s value.
    Source(u32),
    /// A `RouterLink` task, addressed by directed link.
    Link {
        /// The directed link whose task receives the frame.
        link: LinkId,
        /// Hop index of `link` on the slot's path (`links()[hop] == link`).
        hop: u32,
        /// The session slot the frame belongs to.
        slot: u32,
    },
    /// The destination task of session slot `0`'s value.
    Destination(u32),
}

/// Everything that travels between nodes, one enum variant per frame tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireFrame {
    /// A protocol packet routed directly to a task (recovery off).
    Packet {
        /// The receiving task.
        to: NodeTarget,
        /// The protocol packet.
        packet: Packet,
    },
    /// A sequenced protocol packet under the recovery layer. The lane is
    /// `(packet.session(), link)`.
    Data {
        /// The receiving task.
        to: NodeTarget,
        /// The directed link the lane runs over.
        link: LinkId,
        /// Per-lane sequence number.
        seq: u32,
        /// The framed protocol packet.
        packet: Packet,
    },
    /// Acknowledges the `Data` frame `seq` of lane `(session, link)`.
    Ack {
        /// The lane's session.
        session: SessionId,
        /// The lane's directed link.
        link: LinkId,
        /// The acknowledged sequence number.
        seq: u32,
    },
    /// Coordinator → node: issue `API.Join` on the slot's source task.
    Join {
        /// The session slot to join.
        slot: u32,
        /// The application's demand limit.
        limit: RateLimit,
    },
    /// Coordinator → node: issue `API.Leave` on the slot's source task.
    Leave {
        /// The session slot to leave.
        slot: u32,
    },
    /// Coordinator → node: issue `API.Change` on the slot's source task.
    Change {
        /// The session slot whose demand changes.
        slot: u32,
        /// The new demand limit.
        limit: RateLimit,
    },
    /// Coordinator → node: drain and exit the node's event loop.
    Shutdown,
}

/// Why a frame failed to decode. Every variant is a property of the bytes,
/// never a panic: hostile input degrades to an error value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the field at `offset` could be read.
    Truncated {
        /// Byte offset where more input was needed.
        offset: usize,
    },
    /// The length prefix claims more than [`MAX_FRAME_LEN`] bytes.
    FrameTooLarge {
        /// The claimed payload length.
        len: usize,
    },
    /// The version byte is not [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// The frame tag byte matches no [`WireFrame`] variant.
    UnknownFrameTag(u8),
    /// The packet tag byte matches no [`Packet`] variant.
    UnknownPacketTag(u8),
    /// The target tag byte matches no [`NodeTarget`] variant.
    UnknownTargetTag(u8),
    /// The response-kind byte matches no [`ResponseKind`] variant.
    UnknownResponseKind(u8),
    /// A boolean field held something other than 0 or 1.
    BadBool(u8),
    /// A [`RateLimit`] field is neither `+inf` (unlimited) nor a finite
    /// positive demand. Carries the raw bit pattern (bits, not an `f64`, so
    /// the error type stays `Eq` even for NaN payloads).
    InvalidRateLimit {
        /// The offending IEEE-754 bit pattern.
        bits: u64,
    },
    /// The payload had `extra` bytes left over after a complete frame.
    TrailingBytes {
        /// Number of undecoded trailing bytes.
        extra: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::Truncated { offset } => {
                write!(f, "frame truncated at byte {offset}")
            }
            DecodeError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            DecodeError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (this build speaks {WIRE_VERSION})"
                )
            }
            DecodeError::UnknownFrameTag(t) => write!(f, "unknown frame tag {t}"),
            DecodeError::UnknownPacketTag(t) => write!(f, "unknown packet tag {t}"),
            DecodeError::UnknownTargetTag(t) => write!(f, "unknown target tag {t}"),
            DecodeError::UnknownResponseKind(t) => write!(f, "unknown response kind {t}"),
            DecodeError::BadBool(b) => write!(f, "boolean field holds {b}"),
            DecodeError::InvalidRateLimit { bits } => {
                write!(
                    f,
                    "rate limit bits {bits:#018x} are neither +inf nor finite positive"
                )
            }
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete frame")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes `frame` from node `from` as one length-prefixed wire frame,
/// appended to `out`. Returns the number of bytes appended.
pub fn encode_frame(from: u16, frame: &WireFrame, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0, 0, 0, 0]); // length prefix, patched below
    out.push(WIRE_VERSION);
    out.extend_from_slice(&from.to_le_bytes());
    match *frame {
        WireFrame::Packet { to, ref packet } => {
            out.push(0);
            put_target(out, to);
            put_packet(out, packet);
        }
        WireFrame::Data {
            to,
            link,
            seq,
            ref packet,
        } => {
            out.push(1);
            put_target(out, to);
            put_u32(out, link.index() as u32);
            put_u32(out, seq);
            put_packet(out, packet);
        }
        WireFrame::Ack { session, link, seq } => {
            out.push(2);
            put_u64(out, session.0);
            put_u32(out, link.index() as u32);
            put_u32(out, seq);
        }
        WireFrame::Join { slot, limit } => {
            out.push(3);
            put_u32(out, slot);
            put_f64(out, limit.as_bps());
        }
        WireFrame::Leave { slot } => {
            out.push(4);
            put_u32(out, slot);
        }
        WireFrame::Change { slot, limit } => {
            out.push(5);
            put_u32(out, slot);
            put_f64(out, limit.as_bps());
        }
        WireFrame::Shutdown => out.push(6),
    }
    let payload = out.len() - start - LEN_PREFIX;
    debug_assert!(payload <= MAX_FRAME_LEN, "own frames fit the cap");
    out[start..start + LEN_PREFIX].copy_from_slice(&(payload as u32).to_le_bytes());
    out.len() - start
}

/// Decodes one length-prefixed frame from the front of `bytes`.
///
/// Returns `Ok(None)` when `bytes` holds only an incomplete frame (more
/// input is needed), or `Ok(Some((from, frame, consumed)))` with the total
/// bytes consumed including the prefix. Never panics on malformed input.
pub fn decode_frame(bytes: &[u8]) -> Result<Option<(u16, WireFrame, usize)>, DecodeError> {
    if bytes.len() < LEN_PREFIX {
        return Ok(None);
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(DecodeError::FrameTooLarge { len });
    }
    if bytes.len() < LEN_PREFIX + len {
        return Ok(None);
    }
    let (from, frame) = decode_payload(&bytes[LEN_PREFIX..LEN_PREFIX + len])?;
    Ok(Some((from, frame, LEN_PREFIX + len)))
}

/// Decodes a frame payload (everything after the length prefix). The whole
/// slice must be exactly one frame; trailing bytes are an error.
pub fn decode_payload(payload: &[u8]) -> Result<(u16, WireFrame), DecodeError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let from = r.u16()?;
    let tag = r.u8()?;
    let frame = match tag {
        0 => WireFrame::Packet {
            to: r.target()?,
            packet: r.packet()?,
        },
        1 => WireFrame::Data {
            to: r.target()?,
            link: LinkId(r.u32()?),
            seq: r.u32()?,
            packet: r.packet()?,
        },
        2 => WireFrame::Ack {
            session: SessionId(r.u64()?),
            link: LinkId(r.u32()?),
            seq: r.u32()?,
        },
        3 => WireFrame::Join {
            slot: r.u32()?,
            limit: r.rate_limit()?,
        },
        4 => WireFrame::Leave { slot: r.u32()? },
        5 => WireFrame::Change {
            slot: r.u32()?,
            limit: r.rate_limit()?,
        },
        6 => WireFrame::Shutdown,
        other => return Err(DecodeError::UnknownFrameTag(other)),
    };
    r.finish()?;
    Ok((from, frame))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_target(out: &mut Vec<u8>, to: NodeTarget) {
    match to {
        NodeTarget::Source(slot) => {
            out.push(0);
            put_u32(out, slot);
        }
        NodeTarget::Link { link, hop, slot } => {
            out.push(1);
            put_u32(out, link.index() as u32);
            put_u32(out, hop);
            put_u32(out, slot);
        }
        NodeTarget::Destination(slot) => {
            out.push(2);
            put_u32(out, slot);
        }
    }
}

fn put_packet(out: &mut Vec<u8>, packet: &Packet) {
    match *packet {
        Packet::Join {
            session,
            rate,
            restricting,
        } => {
            out.push(0);
            put_u64(out, session.0);
            put_f64(out, rate);
            put_u32(out, restricting.index() as u32);
        }
        Packet::Probe {
            session,
            rate,
            restricting,
        } => {
            out.push(1);
            put_u64(out, session.0);
            put_f64(out, rate);
            put_u32(out, restricting.index() as u32);
        }
        Packet::Response {
            session,
            kind,
            rate,
            restricting,
        } => {
            out.push(2);
            put_u64(out, session.0);
            out.push(match kind {
                ResponseKind::Response => 0,
                ResponseKind::Update => 1,
                ResponseKind::Bottleneck => 2,
            });
            put_f64(out, rate);
            put_u32(out, restricting.index() as u32);
        }
        Packet::Update { session } => {
            out.push(3);
            put_u64(out, session.0);
        }
        Packet::Bottleneck { session } => {
            out.push(4);
            put_u64(out, session.0);
        }
        Packet::SetBottleneck { session, found } => {
            out.push(5);
            put_u64(out, session.0);
            out.push(found as u8);
        }
        Packet::Leave { session } => {
            out.push(6);
            put_u64(out, session.0);
        }
    }
}

/// A bounds-checked little-endian reader over a frame payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.bytes.len() - self.pos < n {
            return Err(DecodeError::Truncated { offset: self.pos });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn boolean(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::BadBool(other)),
        }
    }

    fn rate_limit(&mut self) -> Result<RateLimit, DecodeError> {
        let bps = self.f64()?;
        if bps == f64::INFINITY {
            Ok(RateLimit::unlimited())
        } else if bps.is_finite() && bps > 0.0 {
            Ok(RateLimit::finite(bps))
        } else {
            Err(DecodeError::InvalidRateLimit {
                bits: bps.to_bits(),
            })
        }
    }

    fn target(&mut self) -> Result<NodeTarget, DecodeError> {
        match self.u8()? {
            0 => Ok(NodeTarget::Source(self.u32()?)),
            1 => Ok(NodeTarget::Link {
                link: LinkId(self.u32()?),
                hop: self.u32()?,
                slot: self.u32()?,
            }),
            2 => Ok(NodeTarget::Destination(self.u32()?)),
            other => Err(DecodeError::UnknownTargetTag(other)),
        }
    }

    fn packet(&mut self) -> Result<Packet, DecodeError> {
        match self.u8()? {
            0 => Ok(Packet::Join {
                session: SessionId(self.u64()?),
                rate: self.f64()?,
                restricting: LinkId(self.u32()?),
            }),
            1 => Ok(Packet::Probe {
                session: SessionId(self.u64()?),
                rate: self.f64()?,
                restricting: LinkId(self.u32()?),
            }),
            2 => Ok(Packet::Response {
                session: SessionId(self.u64()?),
                kind: match self.u8()? {
                    0 => ResponseKind::Response,
                    1 => ResponseKind::Update,
                    2 => ResponseKind::Bottleneck,
                    other => return Err(DecodeError::UnknownResponseKind(other)),
                },
                rate: self.f64()?,
                restricting: LinkId(self.u32()?),
            }),
            3 => Ok(Packet::Update {
                session: SessionId(self.u64()?),
            }),
            4 => Ok(Packet::Bottleneck {
                session: SessionId(self.u64()?),
            }),
            5 => Ok(Packet::SetBottleneck {
                session: SessionId(self.u64()?),
                found: self.boolean()?,
            }),
            6 => Ok(Packet::Leave {
                session: SessionId(self.u64()?),
            }),
            other => Err(DecodeError::UnknownPacketTag(other)),
        }
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                extra: self.bytes.len() - self.pos,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(from: u16, frame: WireFrame) {
        let mut wire = Vec::new();
        let n = encode_frame(from, &frame, &mut wire);
        assert_eq!(n, wire.len());
        let (got_from, got, consumed) = decode_frame(&wire).unwrap().expect("complete frame");
        assert_eq!(consumed, wire.len());
        assert_eq!(got_from, from);
        assert_eq!(got, frame);
    }

    fn sample_frames() -> Vec<WireFrame> {
        let to = NodeTarget::Link {
            link: LinkId(7),
            hop: 2,
            slot: 41,
        };
        vec![
            WireFrame::Packet {
                to: NodeTarget::Source(3),
                packet: Packet::Update {
                    session: SessionId(9),
                },
            },
            WireFrame::Packet {
                to,
                packet: Packet::Response {
                    session: SessionId(u64::MAX),
                    kind: ResponseKind::Bottleneck,
                    rate: 12.5e9,
                    restricting: LinkId(u32::MAX),
                },
            },
            WireFrame::Data {
                to: NodeTarget::Destination(0),
                link: LinkId(5),
                seq: 1_000_000,
                packet: Packet::Join {
                    session: SessionId(1),
                    rate: f64::INFINITY,
                    restricting: LinkId(0),
                },
            },
            WireFrame::Ack {
                session: SessionId(77),
                link: LinkId(3),
                seq: 0,
            },
            WireFrame::Join {
                slot: 12,
                limit: RateLimit::unlimited(),
            },
            WireFrame::Join {
                slot: 12,
                limit: RateLimit::finite(5e6),
            },
            WireFrame::Leave { slot: 0 },
            WireFrame::Change {
                slot: 9,
                limit: RateLimit::finite(1.0),
            },
            WireFrame::Shutdown,
        ]
    }

    #[test]
    fn every_sample_frame_round_trips() {
        for (i, frame) in sample_frames().into_iter().enumerate() {
            roundtrip(i as u16, frame);
        }
    }

    #[test]
    fn incomplete_input_asks_for_more() {
        let mut wire = Vec::new();
        encode_frame(4, &WireFrame::Shutdown, &mut wire);
        for cut in 0..wire.len() {
            assert_eq!(decode_frame(&wire[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn every_truncated_payload_errors_not_panics() {
        for frame in sample_frames() {
            let mut wire = Vec::new();
            encode_frame(0, &frame, &mut wire);
            let payload = &wire[LEN_PREFIX..];
            for cut in 0..payload.len() {
                let err = decode_payload(&payload[..cut]).unwrap_err();
                assert!(
                    matches!(err, DecodeError::Truncated { .. }),
                    "cut at {cut}: {err}"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut wire = Vec::new();
        encode_frame(0, &WireFrame::Leave { slot: 1 }, &mut wire);
        wire.push(0xAB);
        let err = decode_payload(&wire[LEN_PREFIX..]).unwrap_err();
        assert_eq!(err, DecodeError::TrailingBytes { extra: 1 });
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut wire = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            decode_frame(&wire).unwrap_err(),
            DecodeError::FrameTooLarge {
                len: MAX_FRAME_LEN + 1
            }
        );
    }

    #[test]
    fn wrong_version_and_bad_tags_are_typed_errors() {
        let mut wire = Vec::new();
        encode_frame(0, &WireFrame::Shutdown, &mut wire);
        let mut wrong_version = wire.clone();
        wrong_version[LEN_PREFIX] = WIRE_VERSION + 1;
        assert_eq!(
            decode_payload(&wrong_version[LEN_PREFIX..]).unwrap_err(),
            DecodeError::UnsupportedVersion(WIRE_VERSION + 1)
        );
        let mut bad_tag = wire.clone();
        bad_tag[LEN_PREFIX + 3] = 200;
        assert_eq!(
            decode_payload(&bad_tag[LEN_PREFIX..]).unwrap_err(),
            DecodeError::UnknownFrameTag(200)
        );
    }

    #[test]
    fn hostile_rate_limit_bits_error_instead_of_panicking() {
        for bps in [0.0, -1.0, f64::NEG_INFINITY, f64::NAN] {
            let mut wire = Vec::new();
            wire.push(WIRE_VERSION);
            wire.extend_from_slice(&0u16.to_le_bytes());
            wire.push(3); // Join
            wire.extend_from_slice(&7u32.to_le_bytes());
            wire.extend_from_slice(&bps.to_bits().to_le_bytes());
            assert_eq!(
                decode_payload(&wire).unwrap_err(),
                DecodeError::InvalidRateLimit {
                    bits: bps.to_bits()
                }
            );
        }
    }
}
