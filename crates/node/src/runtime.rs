//! The multi-node runtime: B-Neck's task handlers hosted on real threads
//! over a [`Transport`], with the simulator completely out of the loop.
//!
//! The design reuses the repository's existing layers unchanged:
//!
//! * the pure task handlers ([`SourceNode`], [`DestinationNode`],
//!   [`RouterLink`]) run exactly as they do under the simulation harness —
//!   they consume packets and emit [`Action`]s into an [`ActionBuffer`];
//! * task placement comes from [`WorldPartition`], the same topology-aware
//!   partition the sharded engine uses: routers split into contiguous rank
//!   blocks, hosts inherit their router's node, the `RouterLink` task of
//!   link `e` lives on the node of `src(e)`. With that placement only
//!   router→router trunk hops ever cross a node boundary;
//! * the config-gated recovery layer ([`RecoveryState`]) provides per-lane
//!   sequencing, acks and retransmission over transports that may lose or
//!   reorder — on reliable loopback it is off by default, because each lane
//!   has a single sending thread and both transports preserve per-connection
//!   FIFO, which implies the per-lane FIFO the paper assumes.
//!
//! ## Quiescence without a simulator
//!
//! The simulator detects quiescence by an empty event queue; a real cluster
//! has no such oracle. The runtime uses the classic counting argument
//! instead: a global `sent` counter is incremented *before* a frame is
//! handed to the transport and a global `received` counter *after* the
//! receiver has fully processed it (cascaded local deliveries included).
//! The coordinator reads `received` first, then `sent`: since
//! `received ≤ sent` always, reading `received = r` and then `sent = s`
//! with `r == s` proves every frame sent up to that point was fully
//! processed — and since nodes only act on arriving frames, no new frame
//! can appear. With recovery enabled, a third counter of unacked frames
//! must also be zero, or a retransmission timer could fire after the
//! counters match. [`NodeRuntime::await_silence`] additionally re-reads the
//! counters after a settle delay, making the silence *measurable* rather
//! than merely inferred.

use crate::codec::{self, NodeTarget, WireFrame};
use crate::transport::Transport;
use bneck_core::destination::DestinationNode;
use bneck_core::router_link::RouterLink;
use bneck_core::source::SourceNode;
use bneck_core::{
    Action, ActionBuffer, Lane, PacketStats, PendingFrame, RateCause, RateEvent, RateEvents,
    RecoveryConfig, RecoveryState, RecoveryStats, SubscriberSet, WorldPartition,
};
use bneck_maxmin::{Allocation, Rate, RateLimit, Session, SessionId, SessionSet, Tolerance};
use bneck_net::{LinkId, Network, Path};
use bneck_sim::SimTime;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The wall clock. The node runtime is real-time code — retransmission
/// timers, silence latency and event timestamps are wall-clock quantities —
/// so this is the one sanctioned call site in the crate.
fn wall_now() -> Instant {
    #[allow(clippy::disallowed_methods)]
    // xlint: allow(DET002, reason = "the node runtime runs on wall-clock time by design; timers and latency reports are real-time quantities")
    Instant::now()
}

/// Tunables of a node worker.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// The recovery layer's tunables, or `None` to run bare (the default:
    /// both bundled transports are reliable and FIFO per lane).
    pub recovery: Option<RecoveryConfig>,
    /// How long a worker blocks waiting for a frame before checking its
    /// retransmission timers and shutdown flag.
    pub poll: Duration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            recovery: None,
            poll: Duration::from_micros(500),
        }
    }
}

/// Per-slot placement and path data, fixed for the lifetime of the cluster.
#[derive(Debug, Clone)]
struct SlotPlan {
    session: SessionId,
    path: Path,
    limit: RateLimit,
    source_owner: u16,
    dest_owner: u16,
}

/// The immutable cluster layout every node shares: which node owns which
/// task, each session slot's path, per-link capacities and reverse links.
///
/// Built once from a [`Network`] and a session list; the runtime never
/// changes membership placement after spawn (sessions may join, change and
/// leave, but their slots and paths are fixed — the arena's slot-reuse
/// machinery is a simulator-only concern).
#[derive(Debug, Clone)]
pub struct ClusterPlan {
    nodes: usize,
    tolerance: Tolerance,
    link_owner: Vec<u16>,
    link_capacity: Vec<Rate>,
    reverse: Vec<Option<LinkId>>,
    slots: Vec<SlotPlan>,
    slot_of: HashMap<SessionId, u32>,
}

impl ClusterPlan {
    /// Lays out `sessions` over `network` on `nodes` nodes.
    ///
    /// Each session is `(id, path, demand limit)`; session ids must be
    /// unique. Placement follows [`WorldPartition`] with `nodes` shards.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero, exceeds `u16::MAX`, the network has no
    /// routers, or a session id repeats.
    pub fn new(
        network: &Network,
        sessions: &[(SessionId, Path, RateLimit)],
        nodes: usize,
        tolerance: Tolerance,
    ) -> Self {
        assert!(nodes >= 1 && nodes <= u16::MAX as usize, "node count range");
        // packet_bits only affects the partition's lookahead matrix, which
        // the runtime does not use; any positive value works.
        let mut partition = WorldPartition::new(network, 256, nodes);
        let mut slots = Vec::with_capacity(sessions.len());
        let mut slot_of = HashMap::with_capacity(sessions.len());
        for (slot, (session, path, limit)) in sessions.iter().enumerate() {
            partition.note_join(slot as u32, path);
            let previous = slot_of.insert(*session, slot as u32);
            assert!(previous.is_none(), "duplicate session id {session:?}");
            slots.push(SlotPlan {
                session: *session,
                path: path.clone(),
                limit: *limit,
                source_owner: partition.source_shard(slot as u32) as u16,
                dest_owner: partition.dest_shard(slot as u32) as u16,
            });
        }
        ClusterPlan {
            nodes,
            tolerance,
            link_owner: (0..network.link_count())
                .map(|l| partition.link_shard(LinkId(l as u32)) as u16)
                .collect(),
            link_capacity: network.links().map(|l| l.capacity().as_bps()).collect(),
            reverse: (0..network.link_count())
                .map(|l| network.reverse_link(LinkId(l as u32)))
                .collect(),
            slots,
            slot_of,
        }
    }

    /// Number of nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of session slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The session occupying `slot`.
    pub fn session(&self, slot: u32) -> SessionId {
        self.slots[slot as usize].session
    }

    /// The slot of `session`, if it is part of the plan.
    pub fn slot_of(&self, session: SessionId) -> Option<u32> {
        self.slot_of.get(&session).copied()
    }

    /// The node hosting `slot`'s source task.
    pub fn source_owner(&self, slot: u32) -> usize {
        self.slots[slot as usize].source_owner as usize
    }

    /// The demand limit of `slot`'s session.
    pub fn limit(&self, slot: u32) -> RateLimit {
        self.slots[slot as usize].limit
    }

    /// The sessions as a [`SessionSet`], for feeding the centralized oracle.
    pub fn session_set(&self) -> SessionSet {
        self.slots
            .iter()
            .map(|s| Session::new(s.session, s.path.clone(), s.limit))
            .collect()
    }

    fn links(&self, slot: u32) -> &[LinkId] {
        self.slots[slot as usize].path.links()
    }

    fn owner_of(&self, target: NodeTarget) -> usize {
        match target {
            NodeTarget::Source(slot) => self.slots[slot as usize].source_owner as usize,
            NodeTarget::Destination(slot) => self.slots[slot as usize].dest_owner as usize,
            NodeTarget::Link { link, .. } => self.link_owner[link.index()] as usize,
        }
    }
}

/// Counters shared by every worker and the coordinator. `sent` / `received`
/// implement the silence-detection argument described in the module docs;
/// `notified` holds each slot's latest `API.Rate` as `f64` bits (NaN until
/// first notified), so the coordinator can read final rates without a
/// message exchange.
struct Shared {
    sent: AtomicU64,
    received: AtomicU64,
    unacked: AtomicU64,
    notified: Vec<AtomicU64>,
}

/// What a node reports when it exits.
#[derive(Debug)]
pub struct NodeOutcome {
    /// The node's index.
    pub node: usize,
    /// Protocol packets this node transmitted, by kind.
    pub stats: PacketStats,
    /// Recovery-layer counters, when recovery was enabled.
    pub recovery: Option<RecoveryStats>,
    /// Frames that failed to decode (hostile or corrupt input; always zero
    /// in a healthy cluster).
    pub decode_errors: u64,
    /// Transport send failures (peer torn down mid-send).
    pub transport_errors: u64,
}

/// A pending retransmission check: at `due`, resend `(lane, seq)` if it is
/// still unacked. The RTO is constant, so push order equals due order and a
/// queue suffices — no timer wheel needed.
struct Retransmit {
    due: Instant,
    lane: Lane,
    seq: u32,
}

struct NodeWorker {
    node: usize,
    plan: Arc<ClusterPlan>,
    shared: Arc<Shared>,
    transport: Box<dyn Transport>,
    start: Instant,
    poll: Duration,
    sources: Vec<Option<SourceNode>>,
    destinations: Vec<Option<DestinationNode>>,
    router_links: Vec<Option<RouterLink>>,
    causes: Vec<RateCause>,
    subscribers: SubscriberSet,
    stats: PacketStats,
    scratch: ActionBuffer,
    pending: VecDeque<(NodeTarget, bneck_core::Packet)>,
    recovery: Option<RecoveryState<NodeTarget>>,
    timers: VecDeque<Retransmit>,
    encode_buf: Vec<u8>,
    decode_errors: u64,
    transport_errors: u64,
    done: bool,
}

impl NodeWorker {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.start.elapsed().as_nanos() as u64)
    }

    fn run(mut self) -> NodeOutcome {
        while !self.done {
            match self.transport.recv_timeout(self.poll) {
                Ok(Some(bytes)) => self.handle_wire(&bytes),
                Ok(None) => {}
                Err(_) => break,
            }
            self.fire_due_retransmits();
        }
        NodeOutcome {
            node: self.node,
            stats: self.stats,
            recovery: self.recovery.as_ref().map(|r| r.stats),
            decode_errors: self.decode_errors,
            transport_errors: self.transport_errors,
        }
    }

    /// Processes one blob delivered by the transport. The `received` counter
    /// is incremented only after the cascade of local deliveries the frame
    /// triggered has fully drained — the ordering the silence argument needs.
    fn handle_wire(&mut self, mut bytes: &[u8]) {
        while !bytes.is_empty() {
            match codec::decode_frame(bytes) {
                Ok(Some((from, frame, consumed))) => {
                    bytes = &bytes[consumed..];
                    self.handle_frame(from, frame);
                    self.drain_pending();
                }
                Ok(None) => {
                    // A truncated tail: the transport only delivers whole
                    // frames, so this is corruption.
                    self.decode_errors += 1;
                    break;
                }
                Err(_) => {
                    self.decode_errors += 1;
                    break;
                }
            }
        }
        self.shared.received.fetch_add(1, Ordering::SeqCst);
    }

    fn handle_frame(&mut self, from: u16, frame: WireFrame) {
        match frame {
            WireFrame::Packet { to, packet } => self.pending.push_back((to, packet)),
            WireFrame::Data {
                to,
                link,
                seq,
                packet,
            } => self.recv_data(from, to, link, seq, packet),
            WireFrame::Ack { session, link, seq } => {
                if let Some(recovery) = self.recovery.as_mut() {
                    if recovery
                        .unacked
                        .remove(&(Lane::new(session, link), seq))
                        .is_some()
                    {
                        self.shared.unacked.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            WireFrame::Join { slot, limit } => self.api(slot, ApiOp::Join(limit)),
            WireFrame::Leave { slot } => self.api(slot, ApiOp::Leave),
            WireFrame::Change { slot, limit } => self.api(slot, ApiOp::Change(limit)),
            WireFrame::Shutdown => self.done = true,
        }
    }

    /// The receive half of the recovery layer, mirroring the harness: ack
    /// every frame (the duplicate's ack replaces a lost one), drop
    /// duplicates, buffer past-gap frames, deliver in order and flush.
    fn recv_data(
        &mut self,
        from: u16,
        to: NodeTarget,
        link: LinkId,
        seq: u32,
        packet: bneck_core::Packet,
    ) {
        let session = packet.session();
        if let Some(recovery) = self.recovery.as_mut() {
            recovery.stats.acks_sent += 1;
        }
        self.send_frame(from as usize, &WireFrame::Ack { session, link, seq });
        let Some(recovery) = self.recovery.as_mut() else {
            // Config mismatch (a recovered peer talking to a bare node):
            // deliver the payload anyway, the sender will stop retransmitting
            // once our ack lands.
            self.pending.push_back((to, packet));
            return;
        };
        let lane = Lane::new(session, link);
        let expected = *recovery.expected.entry(lane).or_insert(0);
        if seq < expected {
            recovery.stats.duplicates_dropped += 1;
            return;
        }
        if seq > expected {
            let frame = PendingFrame {
                over: link,
                target: to,
                packet,
            };
            if recovery.buffered.insert((lane, seq), frame).is_none() {
                recovery.stats.reordered_buffered += 1;
            } else {
                recovery.stats.duplicates_dropped += 1;
            }
            return;
        }
        *recovery
            .expected
            .get_mut(&lane)
            .expect("entry created above") += 1;
        self.pending.push_back((to, packet));
        loop {
            let recovery = self.recovery.as_mut().expect("still configured");
            let next = *recovery.expected.get(&lane).expect("entry created above");
            let Some(frame) = recovery.buffered.remove(&(lane, next)) else {
                break;
            };
            *recovery
                .expected
                .get_mut(&lane)
                .expect("entry created above") += 1;
            self.pending.push_back((frame.target, frame.packet));
        }
    }

    /// Applies an API call to the slot's source task (if this node owns it).
    fn api(&mut self, slot: u32, op: ApiOp) {
        let Some(source) = self.sources.get_mut(slot as usize).and_then(|s| s.as_mut()) else {
            return; // Misrouted or unknown slot: ignore.
        };
        let session = source.session();
        let mut actions = std::mem::take(&mut self.scratch);
        actions.clear();
        match op {
            ApiOp::Join(limit) => source.api_join(limit, &mut actions),
            ApiOp::Leave => {
                let final_rate = source.current_rate();
                source.api_leave(&mut actions);
                let event = RateEvent {
                    at: self.now(),
                    session,
                    rate: final_rate,
                    cause: RateCause::Left,
                };
                self.subscribers.emit_rate(&event);
            }
            ApiOp::Change(limit) => {
                self.causes[slot as usize] = RateCause::Changed;
                source.api_change(limit, &mut actions);
            }
        }
        for action in actions.drain() {
            self.perform(NodeTarget::Source(slot), session, action);
        }
        self.scratch = actions;
    }

    /// Dispatches queued local deliveries until none remain. Every action a
    /// handler emits either re-enters this queue (same-node target) or goes
    /// out through the transport, so the cascade terminates exactly when the
    /// protocol stops talking.
    fn drain_pending(&mut self) {
        while let Some((target, packet)) = self.pending.pop_front() {
            self.dispatch(target, packet);
        }
    }

    fn dispatch(&mut self, target: NodeTarget, packet: bneck_core::Packet) {
        let mut actions = std::mem::take(&mut self.scratch);
        actions.clear();
        match target {
            NodeTarget::Source(slot) => {
                if let Some(Some(source)) = self.sources.get_mut(slot as usize) {
                    source.handle(packet, &mut actions);
                }
            }
            NodeTarget::Link { link, .. } => {
                let capacity = self.plan.link_capacity[link.index()];
                let tolerance = self.plan.tolerance;
                let entry = &mut self.router_links[link.index()];
                let task = entry.get_or_insert_with(|| RouterLink::new(link, capacity, tolerance));
                task.handle(packet, &mut actions);
            }
            NodeTarget::Destination(slot) => {
                if let Some(Some(destination)) = self.destinations.get(slot as usize) {
                    destination.handle(packet, &mut actions);
                }
            }
        }
        for action in actions.drain() {
            self.perform(target, packet.session(), action);
        }
        self.scratch = actions;
    }

    /// Resolves the slot and hop an action's packet belongs to. Envelope
    /// coordinates are trusted when the action is for the origin packet's
    /// own session; actions for *other* sessions (a `RouterLink` notifying
    /// its other members) are resolved against the plan. Slots are never
    /// reused in the runtime, so — unlike the simulator arena — there are no
    /// stale incarnations to guard against.
    fn hop_of(
        &self,
        session: SessionId,
        origin_session: SessionId,
        slot: u32,
        hop: u32,
        link: LinkId,
    ) -> Option<(u32, u32)> {
        if session == origin_session {
            return Some((slot, hop));
        }
        let slot = self.plan.slot_of(session)?;
        let hop = self.plan.links(slot).iter().position(|l| *l == link)?;
        Some((slot, hop as u32))
    }

    /// Turns a task action into a frame transmission or a rate notification,
    /// mirroring the harness's routing exactly.
    fn perform(&mut self, origin: NodeTarget, origin_session: SessionId, action: Action) {
        match action {
            Action::NotifyRate { session, rate } => {
                let cause = match self.plan.slot_of(session) {
                    Some(slot) => {
                        self.shared.notified[slot as usize].store(rate.to_bits(), Ordering::SeqCst);
                        std::mem::replace(&mut self.causes[slot as usize], RateCause::Converged)
                    }
                    None => RateCause::Converged,
                };
                if !self.subscribers.is_empty() {
                    let event = RateEvent {
                        at: self.now(),
                        session,
                        rate,
                        cause,
                    };
                    self.subscribers.emit_rate(&event);
                }
            }
            Action::SendDownstream(packet) => {
                let session = packet.session();
                let (over, next) = match origin {
                    NodeTarget::Source(origin_slot) => {
                        let slot = if session == origin_session {
                            origin_slot
                        } else {
                            match self.plan.slot_of(session) {
                                Some(s) => s,
                                None => return,
                            }
                        };
                        let links = self.plan.links(slot);
                        let next = if links.len() > 1 {
                            NodeTarget::Link {
                                link: links[1],
                                hop: 1,
                                slot,
                            }
                        } else {
                            NodeTarget::Destination(slot)
                        };
                        (links[0], next)
                    }
                    NodeTarget::Link { link, hop, slot } => {
                        let Some((slot, hop)) =
                            self.hop_of(session, origin_session, slot, hop, link)
                        else {
                            return;
                        };
                        let hop = hop as usize;
                        let links = self.plan.links(slot);
                        let next = if hop + 1 < links.len() {
                            NodeTarget::Link {
                                link: links[hop + 1],
                                hop: hop as u32 + 1,
                                slot,
                            }
                        } else {
                            NodeTarget::Destination(slot)
                        };
                        (links[hop], next)
                    }
                    NodeTarget::Destination(_) => return,
                };
                self.transmit(over, next, packet);
            }
            Action::SendUpstream(packet) => {
                let session = packet.session();
                let (forward, next) = match origin {
                    NodeTarget::Destination(origin_slot) => {
                        let slot = if session == origin_session {
                            origin_slot
                        } else {
                            match self.plan.slot_of(session) {
                                Some(s) => s,
                                None => return,
                            }
                        };
                        let links = self.plan.links(slot);
                        let last = links.len() - 1;
                        let next = if last >= 1 {
                            NodeTarget::Link {
                                link: links[last],
                                hop: last as u32,
                                slot,
                            }
                        } else {
                            NodeTarget::Source(slot)
                        };
                        (links[last], next)
                    }
                    NodeTarget::Link { link, hop, slot } => {
                        let Some((slot, hop)) =
                            self.hop_of(session, origin_session, slot, hop, link)
                        else {
                            return;
                        };
                        let hop = hop as usize;
                        if hop == 0 {
                            // The source task owns the first link; nothing
                            // lives upstream of it.
                            return;
                        }
                        let links = self.plan.links(slot);
                        let next = if hop > 1 {
                            NodeTarget::Link {
                                link: links[hop - 1],
                                hop: hop as u32 - 1,
                                slot,
                            }
                        } else {
                            NodeTarget::Source(slot)
                        };
                        (links[hop - 1], next)
                    }
                    NodeTarget::Source(_) => return,
                };
                // Upstream packets travel over the reverse link of the hop.
                let Some(reverse) = self.plan.reverse[forward.index()] else {
                    return;
                };
                self.transmit(reverse, next, packet);
            }
        }
    }

    /// Sends `packet` over directed link `over` to the task `target`. A
    /// same-node target short-circuits through the local queue — the lane's
    /// endpoints never straddle nodes-vs-local, because a lane's receiving
    /// task has a fixed owner, so skipping the recovery framing for local
    /// hops is safe.
    fn transmit(&mut self, over: LinkId, target: NodeTarget, packet: bneck_core::Packet) {
        self.stats.record(packet.kind());
        if !self.subscribers.is_empty() {
            self.subscribers.note_packet(self.now(), packet.kind());
        }
        let owner = self.plan.owner_of(target);
        if owner == self.node {
            self.pending.push_back((target, packet));
            return;
        }
        let frame = match self.recovery.as_mut() {
            None => WireFrame::Packet { to: target, packet },
            Some(recovery) => {
                let lane = Lane::new(packet.session(), over);
                let seq = recovery.assign_seq(lane);
                recovery.unacked.insert(
                    (lane, seq),
                    PendingFrame {
                        over,
                        target,
                        packet,
                    },
                );
                recovery.stats.frames_sent += 1;
                self.shared.unacked.fetch_add(1, Ordering::SeqCst);
                let rto = Duration::from_nanos(recovery.config.rto.as_nanos());
                self.timers.push_back(Retransmit {
                    due: wall_now() + rto,
                    lane,
                    seq,
                });
                WireFrame::Data {
                    to: target,
                    link: over,
                    seq,
                    packet,
                }
            }
        };
        self.send_frame(owner, &frame);
    }

    fn send_frame(&mut self, peer: usize, frame: &WireFrame) {
        self.encode_buf.clear();
        codec::encode_frame(self.node as u16, frame, &mut self.encode_buf);
        // `sent` strictly before the transport sees the frame: the receiver
        // cannot count `received` for a frame not yet in `sent`.
        self.shared.sent.fetch_add(1, Ordering::SeqCst);
        if self.transport.send_to(peer, &self.encode_buf).is_err() {
            self.transport_errors += 1;
            // The frame will never arrive; take it back out of `sent` so a
            // dead peer cannot wedge the silence condition.
            self.shared.received.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Resends every due still-unacked frame and re-arms its timer.
    fn fire_due_retransmits(&mut self) {
        if self.recovery.is_none() || self.timers.is_empty() {
            return;
        }
        let now = wall_now();
        let mut due = Vec::new();
        while let Some(front) = self.timers.front() {
            if front.due > now {
                break;
            }
            let timer = self.timers.pop_front().expect("peeked above");
            due.push((timer.lane, timer.seq));
        }
        for (lane, seq) in due {
            let recovery = self.recovery.as_mut().expect("checked above");
            let Some(frame) = recovery.unacked.get(&(lane, seq)).copied() else {
                continue; // Acked in the meantime: the timer is stale.
            };
            recovery.stats.retransmits += 1;
            let rto = Duration::from_nanos(recovery.config.rto.as_nanos());
            self.timers.push_back(Retransmit {
                due: now + rto,
                lane,
                seq,
            });
            let owner = self.plan.owner_of(frame.target);
            self.send_frame(
                owner,
                &WireFrame::Data {
                    to: frame.target,
                    link: frame.over,
                    seq,
                    packet: frame.packet,
                },
            );
        }
    }
}

enum ApiOp {
    Join(RateLimit),
    Leave,
    Change(RateLimit),
}

/// The silence wait gave up: frames were still in flight (or unacked) when
/// the timeout expired.
#[derive(Debug, Clone, Copy)]
pub struct SilenceTimeout {
    /// Frames handed to transports so far.
    pub sent: u64,
    /// Frames fully processed so far.
    pub received: u64,
    /// Recovery frames still awaiting an ack.
    pub unacked: u64,
}

impl fmt::Display for SilenceTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cluster not silent: sent={} received={} unacked={}",
            self.sent, self.received, self.unacked
        )
    }
}

impl std::error::Error for SilenceTimeout {}

/// A running cluster: one worker thread per node plus this coordinator
/// handle, which injects API calls, waits for silence, reads rates and
/// tears the cluster down.
pub struct NodeRuntime {
    plan: Arc<ClusterPlan>,
    shared: Arc<Shared>,
    coordinator: Box<dyn Transport>,
    handles: Vec<JoinHandle<NodeOutcome>>,
    events: Vec<RateEvents>,
    encode_buf: Vec<u8>,
}

impl NodeRuntime {
    /// Spawns one worker thread per node of `plan` over `endpoints`.
    ///
    /// `endpoints` must hold `plan.nodes() + 1` transport endpoints: index
    /// `i` becomes node `i`'s, the last one becomes the coordinator's (the
    /// codec's `from` field uses the same indexing).
    ///
    /// # Panics
    ///
    /// Panics if the endpoint count does not match, or a worker thread
    /// cannot be spawned.
    pub fn spawn(
        plan: ClusterPlan,
        mut endpoints: Vec<Box<dyn Transport>>,
        config: NodeConfig,
    ) -> NodeRuntime {
        assert_eq!(
            endpoints.len(),
            plan.nodes() + 1,
            "one endpoint per node plus the coordinator"
        );
        let coordinator = endpoints.pop().expect("length checked above");
        let plan = Arc::new(plan);
        let shared = Arc::new(Shared {
            sent: AtomicU64::new(0),
            received: AtomicU64::new(0),
            unacked: AtomicU64::new(0),
            notified: (0..plan.slot_count())
                .map(|_| AtomicU64::new(f64::NAN.to_bits()))
                .collect(),
        });
        let start = wall_now();
        let mut handles = Vec::with_capacity(plan.nodes());
        let mut events = Vec::with_capacity(plan.nodes());
        for (node, transport) in endpoints.into_iter().enumerate() {
            let (reader, subscriber) = RateEvents::channel();
            events.push(reader);
            let mut subscribers = SubscriberSet::new();
            subscribers.subscribe(subscriber);
            let mut sources: Vec<Option<SourceNode>> = Vec::with_capacity(plan.slot_count());
            let mut destinations: Vec<Option<DestinationNode>> =
                Vec::with_capacity(plan.slot_count());
            for sp in &plan.slots {
                sources.push((sp.source_owner as usize == node).then(|| {
                    let first = sp.path.links()[0];
                    SourceNode::new(
                        sp.session,
                        first,
                        plan.link_capacity[first.index()],
                        plan.tolerance,
                    )
                }));
                destinations.push(
                    (sp.dest_owner as usize == node).then(|| DestinationNode::new(sp.session)),
                );
            }
            let worker = NodeWorker {
                node,
                plan: Arc::clone(&plan),
                shared: Arc::clone(&shared),
                transport,
                start,
                poll: config.poll,
                sources,
                destinations,
                router_links: (0..plan.link_owner.len()).map(|_| None).collect(),
                causes: vec![RateCause::Joined; plan.slot_count()],
                subscribers,
                stats: PacketStats::new(),
                scratch: ActionBuffer::default(),
                pending: VecDeque::new(),
                recovery: config.recovery.map(RecoveryState::new),
                timers: VecDeque::new(),
                encode_buf: Vec::with_capacity(128),
                decode_errors: 0,
                transport_errors: 0,
                done: false,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("bneck-node-{node}"))
                    .spawn(move || worker.run())
                    .expect("spawn node worker thread"),
            );
        }
        NodeRuntime {
            plan,
            shared,
            coordinator,
            handles,
            events,
            encode_buf: Vec::with_capacity(64),
        }
    }

    /// The cluster's layout.
    pub fn plan(&self) -> &ClusterPlan {
        &self.plan
    }

    /// Sends one API frame from the coordinator to the node owning the
    /// slot's source task.
    fn send_api(&mut self, slot: u32, frame: WireFrame) {
        let owner = self.plan.source_owner(slot);
        self.encode_buf.clear();
        codec::encode_frame(self.plan.nodes() as u16, &frame, &mut self.encode_buf);
        self.shared.sent.fetch_add(1, Ordering::SeqCst);
        self.coordinator
            .send_to(owner, &self.encode_buf)
            .expect("coordinator send to a live node");
    }

    /// Issues `API.Join` for `slot` with its planned demand limit.
    pub fn join(&mut self, slot: u32) {
        let limit = self.plan.limit(slot);
        self.send_api(slot, WireFrame::Join { slot, limit });
    }

    /// Issues `API.Join` for every slot of the plan, in slot order.
    pub fn join_all(&mut self) {
        for slot in 0..self.plan.slot_count() as u32 {
            self.join(slot);
        }
    }

    /// Issues `API.Leave` for `slot`.
    pub fn leave(&mut self, slot: u32) {
        self.send_api(slot, WireFrame::Leave { slot });
    }

    /// Issues `API.Change` for `slot` with a new demand limit.
    pub fn change(&mut self, slot: u32, limit: RateLimit) {
        self.send_api(slot, WireFrame::Change { slot, limit });
    }

    /// Blocks until the cluster is silent: every frame handed to a
    /// transport has been fully processed and (with recovery) no frame
    /// awaits an ack. Returns the time from this call to the first moment
    /// the counters matched.
    ///
    /// After the counters first match, they are re-read `settle` later; a
    /// counter that moved restarts the wait, so a returned `Ok` means the
    /// control plane was *observed* idle over a real interval, not just
    /// inferred idle from one sample.
    pub fn await_silence(
        &mut self,
        settle: Duration,
        timeout: Duration,
    ) -> Result<Duration, SilenceTimeout> {
        let begin = wall_now();
        loop {
            // Read order matters: received before sent (see module docs).
            let received = self.shared.received.load(Ordering::SeqCst);
            let sent = self.shared.sent.load(Ordering::SeqCst);
            let unacked = self.shared.unacked.load(Ordering::SeqCst);
            if sent == received && unacked == 0 {
                let at = begin.elapsed();
                std::thread::sleep(settle);
                let still_received = self.shared.received.load(Ordering::SeqCst);
                let still_sent = self.shared.sent.load(Ordering::SeqCst);
                if still_sent == sent && still_received == received {
                    return Ok(at);
                }
                continue; // Something moved during the settle window.
            }
            if begin.elapsed() > timeout {
                return Err(SilenceTimeout {
                    sent,
                    received,
                    unacked,
                });
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// The latest `API.Rate` notification of each slot, as an
    /// [`Allocation`]. Slots never notified are absent.
    pub fn rates(&self) -> Allocation {
        let mut allocation = Allocation::new();
        for slot in 0..self.plan.slot_count() as u32 {
            let bits = self.shared.notified[slot as usize].load(Ordering::SeqCst);
            let rate = f64::from_bits(bits);
            if !rate.is_nan() {
                allocation.set(self.plan.session(slot), rate);
            }
        }
        allocation
    }

    /// Drains the rate events node `node`'s worker has emitted so far.
    pub fn drain_events(&self, node: usize) -> Vec<RateEvent> {
        self.events[node].drain()
    }

    /// Total frames handed to transports so far (control plane volume).
    pub fn frames_sent(&self) -> u64 {
        self.shared.sent.load(Ordering::SeqCst)
    }

    /// Sends every node a `Shutdown` frame and joins the worker threads,
    /// returning their outcomes in node order.
    pub fn shutdown(mut self) -> Vec<NodeOutcome> {
        for node in 0..self.plan.nodes() {
            self.encode_buf.clear();
            codec::encode_frame(
                self.plan.nodes() as u16,
                &WireFrame::Shutdown,
                &mut self.encode_buf,
            );
            self.shared.sent.fetch_add(1, Ordering::SeqCst);
            let _ = self.coordinator.send_to(node, &self.encode_buf);
        }
        self.handles
            .drain(..)
            .map(|h| h.join().expect("node worker panicked"))
            .collect()
    }
}
