//! The loopback-cluster demo: a parameterized chain topology, a cluster of
//! worker threads over a real transport, and an oracle-checked report.
//!
//! The driver builds a chain of routers joined by 1 Gbps trunks, attaches a
//! fresh pair of 100 Mbps hosts per session (mostly one-trunk-hop "short"
//! sessions, with every K-th session spanning the whole chain so the trunks
//! interact), runs join → converged → silent on a [`NodeRuntime`], and
//! cross-checks the final notified rates against the centralized max-min
//! oracle. The report's `mismatches` count is the demo's verdict — CI greps
//! for `mismatches=0`.

use crate::runtime::{ClusterPlan, NodeConfig, NodeRuntime, SilenceTimeout};
use crate::transport::{channel_mesh, tcp_mesh, Transport};
use bneck_core::{RecoveryConfig, RecoveryStats};
use bneck_maxmin::{compare_allocations, CentralizedBneck, RateLimit, SessionId, Tolerance};
use bneck_net::{Capacity, Delay, Network, NetworkBuilder, Path};
use std::fmt;
use std::io;
use std::time::Duration;

/// Which byte-moving substrate the cluster runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterTransport {
    /// Real `std::net` loopback TCP sockets.
    Tcp,
    /// In-process channels (deterministic, no sockets).
    Channel,
}

impl ClusterTransport {
    /// The name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            ClusterTransport::Tcp => "tcp",
            ClusterTransport::Channel => "channel",
        }
    }
}

/// Parameters of a cluster demo run.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Worker threads (nodes) the topology is partitioned over.
    pub nodes: usize,
    /// Routers in the chain (at least 2).
    pub routers: usize,
    /// Client sessions, each with its own host pair.
    pub sessions: usize,
    /// Every `long_every`-th session spans the whole chain instead of one
    /// trunk hop (0 disables long sessions).
    pub long_every: usize,
    /// The transport to run on.
    pub transport: ClusterTransport,
    /// Recovery-layer tunables, or `None` to run bare.
    pub recovery: Option<RecoveryConfig>,
    /// How long the counters must stay frozen for silence to count as
    /// *measured* (see [`NodeRuntime::await_silence`]).
    pub settle: Duration,
    /// Give-up bound on the whole join → silent wait.
    pub timeout: Duration,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            nodes: 4,
            routers: 8,
            sessions: 1000,
            long_every: 10,
            transport: ClusterTransport::Tcp,
            recovery: None,
            settle: Duration::from_millis(2),
            timeout: Duration::from_secs(120),
        }
    }
}

/// What a demo run reports.
#[derive(Debug)]
pub struct ClusterReport {
    /// The spec the run used.
    pub spec: ClusterSpec,
    /// Frames handed to transports between join and shutdown-begin.
    pub frames: u64,
    /// Throughput over the join → silent interval.
    pub frames_per_sec: f64,
    /// Wall time from the first join frame to the counters first matching.
    pub join_to_silent: Duration,
    /// Sessions whose final notified rate disagrees with the centralized
    /// max-min oracle (plus sessions missing a notification).
    pub mismatches: usize,
    /// `API.Rate` events the nodes emitted in total.
    pub rate_events: usize,
    /// Frames that failed to decode, summed over nodes (zero in health).
    pub decode_errors: u64,
    /// Transport send failures, summed over nodes (zero in health).
    pub transport_errors: u64,
    /// Aggregated recovery counters, when recovery was on.
    pub recovery: Option<RecoveryStats>,
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bneck-node cluster: nodes={} routers={} sessions={} transport={} recovery={}",
            self.spec.nodes,
            self.spec.routers,
            self.spec.sessions,
            self.spec.transport.name(),
            if self.spec.recovery.is_some() {
                "on"
            } else {
                "off"
            },
        )?;
        writeln!(
            f,
            "  frames={} ({:.0} frames/s) join->silent={:.3}s silent=confirmed(settle {:?})",
            self.frames,
            self.frames_per_sec,
            self.join_to_silent.as_secs_f64(),
            self.spec.settle,
        )?;
        writeln!(f, "  oracle check: mismatches={}", self.mismatches)?;
        write!(
            f,
            "  rate_events={} decode_errors={} transport_errors={}",
            self.rate_events, self.decode_errors, self.transport_errors
        )?;
        if let Some(r) = self.recovery {
            write!(
                f,
                "\n  recovery: frames={} retransmits={} acks={} duplicates={} reordered={}",
                r.frames_sent,
                r.retransmits,
                r.acks_sent,
                r.duplicates_dropped,
                r.reordered_buffered
            )?;
        }
        Ok(())
    }
}

/// Why a demo run failed.
#[derive(Debug)]
pub enum ClusterError {
    /// Socket setup failed (TCP transport only).
    Io(io::Error),
    /// The cluster never went silent within the spec's timeout.
    Timeout(SilenceTimeout),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "transport setup failed: {e}"),
            ClusterError::Timeout(t) => t.fmt(f),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<io::Error> for ClusterError {
    fn from(e: io::Error) -> Self {
        ClusterError::Io(e)
    }
}

/// Builds the demo topology and session list: a chain of `routers` joined by
/// 1 Gbps trunks, one fresh 100 Mbps host pair per session.
///
/// Routers are added before any host, which is what [`ClusterPlan`]'s
/// partition requires (hosts inherit the shard of their already-placed
/// router).
///
/// # Panics
///
/// Panics if `routers < 2` or `sessions == 0`.
pub fn build_cluster_topology(spec: &ClusterSpec) -> (Network, Vec<(SessionId, Path, RateLimit)>) {
    assert!(spec.routers >= 2, "the chain needs at least two routers");
    assert!(spec.sessions > 0, "at least one session");
    let trunk = Capacity::from_gbps(1.0);
    let access = Capacity::from_mbps(100.0);
    let delay = Delay::from_micros(5);
    let mut builder = NetworkBuilder::new();
    let routers: Vec<_> = (0..spec.routers)
        .map(|i| builder.add_router(format!("r{i}")))
        .collect();
    for pair in routers.windows(2) {
        builder.connect(pair[0], pair[1], trunk, delay);
    }
    let mut hosts = Vec::with_capacity(spec.sessions);
    for i in 0..spec.sessions {
        let (a, b) = if spec.long_every > 0 && i % spec.long_every == 0 {
            (0, spec.routers - 1)
        } else {
            let p = i % (spec.routers - 1);
            (p, p + 1)
        };
        let src = builder.add_host(format!("src{i}"), routers[a], access, delay);
        let dst = builder.add_host(format!("dst{i}"), routers[b], access, delay);
        hosts.push((src, dst));
    }
    let network = builder.build();
    let sessions = hosts
        .into_iter()
        .enumerate()
        .map(|(i, (src, dst))| {
            let path = network
                .shortest_path(src, dst)
                .expect("the chain is connected");
            (SessionId(i as u64), path, RateLimit::unlimited())
        })
        .collect();
    (network, sessions)
}

fn boxed<T: Transport + 'static>(endpoints: Vec<T>) -> Vec<Box<dyn Transport>> {
    endpoints
        .into_iter()
        .map(|e| Box::new(e) as Box<dyn Transport>)
        .collect()
}

/// Runs the demo end to end: spawn, join every session, wait for measured
/// silence, cross-check rates against the centralized oracle, shut down.
pub fn run_cluster(spec: ClusterSpec) -> Result<ClusterReport, ClusterError> {
    let (network, sessions) = build_cluster_topology(&spec);
    let plan = ClusterPlan::new(&network, &sessions, spec.nodes, Tolerance::default());
    let session_set = plan.session_set();
    let endpoints = match spec.transport {
        ClusterTransport::Channel => boxed(channel_mesh(spec.nodes + 1)),
        ClusterTransport::Tcp => boxed(tcp_mesh(spec.nodes + 1)?),
    };
    let config = NodeConfig {
        recovery: spec.recovery,
        ..NodeConfig::default()
    };
    let mut runtime = NodeRuntime::spawn(plan, endpoints, config);
    runtime.join_all();
    let join_to_silent = match runtime.await_silence(spec.settle, spec.timeout) {
        Ok(latency) => latency,
        Err(timeout) => {
            runtime.shutdown();
            return Err(ClusterError::Timeout(timeout));
        }
    };
    let frames = runtime.frames_sent();
    let rates = runtime.rates();
    let expected = CentralizedBneck::new(&network, &session_set).solve();
    let mismatches =
        compare_allocations(&session_set, &rates, &expected, Tolerance::new(1e-6, 1.0))
            .err()
            .map_or(0, |violations| violations.len());
    let rate_events = (0..spec.nodes)
        .map(|node| runtime.drain_events(node).len())
        .sum();
    let outcomes = runtime.shutdown();
    let decode_errors = outcomes.iter().map(|o| o.decode_errors).sum();
    let transport_errors = outcomes.iter().map(|o| o.transport_errors).sum();
    let recovery = spec.recovery.map(|_| {
        let mut total = RecoveryStats::default();
        for stats in outcomes.iter().filter_map(|o| o.recovery) {
            total.frames_sent += stats.frames_sent;
            total.retransmits += stats.retransmits;
            total.acks_sent += stats.acks_sent;
            total.duplicates_dropped += stats.duplicates_dropped;
            total.reordered_buffered += stats.reordered_buffered;
        }
        total
    });
    let secs = join_to_silent.as_secs_f64();
    Ok(ClusterReport {
        spec,
        frames,
        frames_per_sec: if secs > 0.0 {
            frames as f64 / secs
        } else {
            0.0
        },
        join_to_silent,
        mismatches,
        rate_events,
        decode_errors,
        transport_errors,
        recovery,
    })
}
