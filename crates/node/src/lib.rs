//! # bneck-node
//!
//! B-Neck off the simulator: a wire codec and a multi-node runtime that host
//! the protocol's task handlers on real threads over real transports.
//!
//! Everything above the byte-moving layer is shared with the simulation
//! harness — the same pure [`bneck_core::source`] / [`bneck_core::destination`]
//! / [`bneck_core::router_link`] handlers, the same [`bneck_core::partition`]
//! placement, the same config-gated [`bneck_core::recovery`] layer. What this
//! crate adds is the part the simulator faked:
//!
//! * [`codec`] — a compact, versioned, length-prefixed binary format for
//!   protocol packets, recovery envelopes and API calls. Decoding is total:
//!   malformed bytes become a typed [`codec::DecodeError`], never a panic.
//! * [`transport`] — the [`transport::Transport`] trait with two meshes:
//!   in-process channels (deterministic tests) and loopback TCP sockets
//!   (the real thing, `TCP_NODELAY`, one reader thread per connection).
//! * [`runtime`] — [`runtime::NodeRuntime`]: one worker thread per node,
//!   counting-argument silence detection, per-node rate-event subscriptions,
//!   and a coordinator handle for `API.Join` / `API.Leave` / `API.Change`.
//! * [`cluster`] — the demo driver: a chain-of-routers loopback cluster,
//!   join → converged → silent, final rates cross-checked against the
//!   centralized max-min oracle.
//!
//! ## Quickstart
//!
//! ```
//! use bneck_node::cluster::{run_cluster, ClusterSpec, ClusterTransport};
//! use std::time::Duration;
//!
//! let report = run_cluster(ClusterSpec {
//!     nodes: 2,
//!     routers: 3,
//!     sessions: 12,
//!     transport: ClusterTransport::Channel,
//!     timeout: Duration::from_secs(30),
//!     ..ClusterSpec::default()
//! })
//! .unwrap();
//! assert_eq!(report.mismatches, 0, "{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod codec;
pub mod runtime;
pub mod transport;

pub use cluster::{run_cluster, ClusterReport, ClusterSpec, ClusterTransport};
pub use codec::{decode_frame, encode_frame, DecodeError, NodeTarget, WireFrame};
pub use runtime::{ClusterPlan, NodeConfig, NodeOutcome, NodeRuntime, SilenceTimeout};
pub use transport::{channel_mesh, tcp_mesh, ChannelEndpoint, TcpEndpoint, Transport};
