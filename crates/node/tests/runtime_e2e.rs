//! End-to-end tests of the multi-node runtime: real threads, real (or
//! in-process) transports, no simulator anywhere — rates must still land
//! exactly on the centralized max-min oracle and the control plane must go
//! measurably silent.

use bneck_core::RecoveryConfig;
use bneck_maxmin::{compare_allocations, CentralizedBneck, RateLimit, SessionId, Tolerance};
use bneck_net::topology::synthetic;
use bneck_net::{Capacity, Delay, Network, Path};
use bneck_node::cluster::{run_cluster, ClusterSpec, ClusterTransport};
use bneck_node::runtime::{ClusterPlan, NodeConfig, NodeRuntime};
use bneck_node::transport::{channel_mesh, Transport};
use std::time::Duration;

const SETTLE: Duration = Duration::from_millis(2);
const TIMEOUT: Duration = Duration::from_secs(60);

/// A dumbbell with two host pairs and its two cross-bottleneck sessions.
fn dumbbell_sessions() -> (Network, Vec<(SessionId, Path, RateLimit)>) {
    let network = synthetic::dumbbell(
        2,
        Capacity::from_mbps(100.0),
        Capacity::from_mbps(60.0),
        Delay::from_micros(1),
    );
    let hosts: Vec<_> = network.hosts().map(|h| h.id()).collect();
    let sessions = vec![
        (
            SessionId(0),
            network.shortest_path(hosts[0], hosts[1]).unwrap(),
            RateLimit::unlimited(),
        ),
        (
            SessionId(1),
            network.shortest_path(hosts[2], hosts[3]).unwrap(),
            RateLimit::unlimited(),
        ),
    ];
    (network, sessions)
}

fn boxed<T: Transport + 'static>(endpoints: Vec<T>) -> Vec<Box<dyn Transport>> {
    endpoints
        .into_iter()
        .map(|e| Box::new(e) as Box<dyn Transport>)
        .collect()
}

#[test]
fn dumbbell_two_sessions_are_oracle_exact_and_go_silent() {
    let (network, sessions) = dumbbell_sessions();
    let plan = ClusterPlan::new(&network, &sessions, 2, Tolerance::default());
    let session_set = plan.session_set();
    let mut runtime = NodeRuntime::spawn(plan, boxed(channel_mesh(3)), NodeConfig::default());
    runtime.join_all();
    let latency = runtime
        .await_silence(SETTLE, TIMEOUT)
        .expect("the cluster must go silent");
    assert!(latency <= TIMEOUT);

    // Both sessions share the 60 Mbps bottleneck: 30 Mbps each, and the full
    // allocation must agree with the centralized oracle.
    let rates = runtime.rates();
    assert!((rates.rate(SessionId(0)).unwrap() - 30e6).abs() < 1.0);
    assert!((rates.rate(SessionId(1)).unwrap() - 30e6).abs() < 1.0);
    let expected = CentralizedBneck::new(&network, &session_set).solve();
    compare_allocations(&session_set, &rates, &expected, Tolerance::new(1e-6, 1.0))
        .expect("runtime rates must match the oracle exactly");

    // Each source emitted at least its convergence notification, and once
    // silent, the event stream stays dry.
    let events: Vec<_> = (0..2).flat_map(|node| runtime.drain_events(node)).collect();
    assert!(
        events.iter().any(|e| e.session == SessionId(0))
            && events.iter().any(|e| e.session == SessionId(1)),
        "both sessions must have notified: {events:?}"
    );
    std::thread::sleep(Duration::from_millis(5));
    let after: usize = (0..2).map(|node| runtime.drain_events(node).len()).sum();
    assert_eq!(after, 0, "a silent cluster must emit no further events");

    for outcome in runtime.shutdown() {
        assert_eq!(outcome.decode_errors, 0);
        assert_eq!(outcome.transport_errors, 0);
    }
}

#[test]
fn change_and_leave_rebalance_to_the_oracle() {
    let (network, sessions) = dumbbell_sessions();
    let plan = ClusterPlan::new(&network, &sessions, 2, Tolerance::default());
    let mut runtime = NodeRuntime::spawn(plan, boxed(channel_mesh(3)), NodeConfig::default());
    runtime.join_all();
    runtime.await_silence(SETTLE, TIMEOUT).expect("initial run");

    // Capping session 0 at 10 Mbps frees bottleneck share for session 1.
    runtime.change(0, RateLimit::finite(10e6));
    runtime
        .await_silence(SETTLE, TIMEOUT)
        .expect("after change");
    let rates = runtime.rates();
    assert!((rates.rate(SessionId(0)).unwrap() - 10e6).abs() < 1.0);
    assert!((rates.rate(SessionId(1)).unwrap() - 50e6).abs() < 1.0);

    // Session 0 leaving hands session 1 the whole bottleneck.
    runtime.leave(0);
    runtime.await_silence(SETTLE, TIMEOUT).expect("after leave");
    let rates = runtime.rates();
    assert!((rates.rate(SessionId(1)).unwrap() - 60e6).abs() < 1.0);
    runtime.shutdown();
}

#[test]
fn tcp_cluster_matches_oracle() {
    let report = run_cluster(ClusterSpec {
        nodes: 3,
        routers: 4,
        sessions: 48,
        long_every: 6,
        transport: ClusterTransport::Tcp,
        settle: SETTLE,
        timeout: TIMEOUT,
        ..ClusterSpec::default()
    })
    .expect("tcp cluster run");
    assert_eq!(report.mismatches, 0, "{report}");
    assert_eq!(report.decode_errors, 0, "{report}");
    assert_eq!(report.transport_errors, 0, "{report}");
    assert!(report.frames > 0 && report.rate_events >= 48, "{report}");
}

#[test]
fn recovery_layer_stays_oracle_exact_on_reliable_transport() {
    let report = run_cluster(ClusterSpec {
        nodes: 2,
        routers: 3,
        sessions: 24,
        long_every: 4,
        transport: ClusterTransport::Channel,
        recovery: Some(RecoveryConfig::with_rto(Delay::from_micros(200_000))),
        settle: SETTLE,
        timeout: TIMEOUT,
    })
    .expect("recovered cluster run");
    assert_eq!(report.mismatches, 0, "{report}");
    let recovery = report.recovery.expect("recovery stats are reported");
    assert!(recovery.frames_sent > 0, "{report}");
    // Every delivered frame (first transmission or retransmission) is acked.
    assert_eq!(
        recovery.acks_sent,
        recovery.frames_sent + recovery.retransmits,
        "{report}"
    );
    // A reliable in-order transport never forces reorder buffering.
    assert_eq!(recovery.reordered_buffered, 0, "{report}");
}

#[test]
fn single_node_cluster_works_without_any_wire_traffic_beyond_api() {
    // Everything lands on one node: the only transport frames are the
    // coordinator's API calls and the shutdown, proving local dispatch is a
    // complete fast path.
    let (network, sessions) = dumbbell_sessions();
    let plan = ClusterPlan::new(&network, &sessions, 1, Tolerance::default());
    let mut runtime = NodeRuntime::spawn(plan, boxed(channel_mesh(2)), NodeConfig::default());
    runtime.join_all();
    runtime.await_silence(SETTLE, TIMEOUT).expect("silence");
    let rates = runtime.rates();
    assert!((rates.rate(SessionId(0)).unwrap() - 30e6).abs() < 1.0);
    assert_eq!(
        runtime.frames_sent(),
        2,
        "exactly the two join frames cross the wire before shutdown"
    );
    runtime.shutdown();
}
