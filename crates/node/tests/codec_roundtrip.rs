//! Property tests of the wire codec: every frame variant — all seven
//! protocol packets, the recovery `Data`/`Ack` envelopes, the API control
//! frames — round-trips exactly through encode/decode, and no byte string,
//! however hostile, makes the decoder panic.

use bneck_core::packet::{Packet, ResponseKind};
use bneck_maxmin::{RateLimit, SessionId};
use bneck_net::LinkId;
use bneck_node::codec::{
    decode_frame, decode_payload, encode_frame, DecodeError, NodeTarget, WireFrame, LEN_PREFIX,
};
use proptest::prelude::*;

/// Builds one of the seven protocol packets from drawn raw material.
fn packet(
    tag: u8,
    session: u64,
    rate: f64,
    unlimited: bool,
    link: u32,
    kind: u8,
    found: bool,
) -> Packet {
    let session = SessionId(session);
    let restricting = LinkId(link);
    let rate = if unlimited { f64::INFINITY } else { rate };
    match tag % 7 {
        0 => Packet::Join {
            session,
            rate,
            restricting,
        },
        1 => Packet::Probe {
            session,
            rate,
            restricting,
        },
        2 => Packet::Response {
            session,
            kind: match kind % 3 {
                0 => ResponseKind::Response,
                1 => ResponseKind::Update,
                _ => ResponseKind::Bottleneck,
            },
            rate,
            restricting,
        },
        3 => Packet::Update { session },
        4 => Packet::Bottleneck { session },
        5 => Packet::SetBottleneck { session, found },
        _ => Packet::Leave { session },
    }
}

/// Builds one of the three wire targets from drawn raw material.
fn target(tag: u8, link: u32, hop: u32, slot: u32) -> NodeTarget {
    match tag % 3 {
        0 => NodeTarget::Source(slot),
        1 => NodeTarget::Link {
            link: LinkId(link),
            hop,
            slot,
        },
        _ => NodeTarget::Destination(slot),
    }
}

/// Builds any frame variant from drawn raw material. Tags 0–6 mirror the
/// codec's frame tags; the packet/target material is reused across variants.
#[allow(clippy::too_many_arguments)]
fn frame(
    ftag: u8,
    ttag: u8,
    ptag: u8,
    session: u64,
    rate: f64,
    unlimited: bool,
    link: u32,
    hop: u32,
    slot: u32,
    seq: u32,
    kind: u8,
    found: bool,
) -> WireFrame {
    let to = target(ttag, link, hop, slot);
    let pkt = packet(ptag, session, rate, unlimited, link, kind, found);
    let limit = if unlimited {
        RateLimit::unlimited()
    } else {
        RateLimit::finite(rate)
    };
    match ftag % 7 {
        0 => WireFrame::Packet { to, packet: pkt },
        1 => WireFrame::Data {
            to,
            link: LinkId(link),
            seq,
            packet: pkt,
        },
        2 => WireFrame::Ack {
            session: SessionId(session),
            link: LinkId(link),
            seq,
        },
        3 => WireFrame::Join { slot, limit },
        4 => WireFrame::Leave { slot },
        5 => WireFrame::Change { slot, limit },
        _ => WireFrame::Shutdown,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Exact round-trip of every frame variant, covering all seven packet
    /// kinds, all three targets, all three response kinds and both rate-limit
    /// shapes (draws are uniform over the tag spaces, so 2048 cases visit
    /// every combination many times).
    #[test]
    fn every_frame_variant_round_trips_exactly(
        from in 0u16..u16::MAX,
        (ftag, ttag, ptag, kind) in (0u8..7, 0u8..3, 0u8..7, 0u8..3),
        (session, link, hop) in (0u64..u64::MAX, 0u32..u32::MAX, 0u32..64),
        (slot, seq) in (0u32..u32::MAX, 0u32..u32::MAX),
        rate in 0.001f64..1.0e18,
        unlimited in proptest::bool::ANY,
        found in proptest::bool::ANY,
    ) {
        let original = frame(
            ftag, ttag, ptag, session, rate, unlimited, link, hop, slot, seq, kind, found,
        );
        let mut wire = Vec::new();
        let appended = encode_frame(from, &original, &mut wire);
        prop_assert_eq!(appended, wire.len());
        let (got_from, got, consumed) = match decode_frame(&wire) {
            Ok(Some(decoded)) => decoded,
            other => return Err(TestCaseError::Fail(format!("decode failed: {other:?}"))),
        };
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(got_from, from);
        prop_assert_eq!(got, original);
        // Re-encoding the decoded frame must reproduce the bytes bit for bit
        // (the format has a single canonical encoding per value).
        let mut again = Vec::new();
        encode_frame(got_from, &got, &mut again);
        prop_assert_eq!(again, wire);
    }

    /// Truncating a valid frame at any point yields `Ok(None)` (whole-frame
    /// boundary not reached) or a typed error at the payload level — never a
    /// panic, never a bogus success.
    #[test]
    fn truncations_of_valid_frames_never_panic(
        (ftag, ttag, ptag) in (0u8..7, 0u8..3, 0u8..7),
        (session, link) in (0u64..u64::MAX, 0u32..u32::MAX),
        rate in 0.001f64..1.0e18,
        cut_seed in 0u32..u32::MAX,
    ) {
        let original = frame(ftag, ttag, ptag, session, rate, false, link, 3, 7, 11, 1, true);
        let mut wire = Vec::new();
        encode_frame(9, &original, &mut wire);
        let cut = cut_seed as usize % wire.len();
        // A prefix of the whole frame: incomplete, the decoder asks for more.
        prop_assert_eq!(decode_frame(&wire[..cut]).ok(), Some(None));
        // A truncated payload handed directly to the payload decoder errors.
        if cut >= LEN_PREFIX {
            let err = decode_payload(&wire[LEN_PREFIX..cut]);
            prop_assert!(err.is_err(), "payload cut at {} decoded: {:?}", cut, err);
        }
    }

    /// Arbitrary garbage never panics the decoder: it either fails with a
    /// typed error, reports an incomplete frame, or (if it happens to spell
    /// a valid frame) decodes into something that re-encodes cleanly.
    #[test]
    fn garbage_bytes_never_panic(bytes in prop::collection::vec(0u8..255, 0..64)) {
        match decode_frame(&bytes) {
            Ok(Some((from, frame, consumed))) => {
                prop_assert!(consumed <= bytes.len());
                let mut again = Vec::new();
                encode_frame(from, &frame, &mut again);
                prop_assert_eq!(&again[..], &bytes[..consumed]);
            }
            Ok(None) => {}
            Err(e) => {
                // Errors must format cleanly too (Display is total).
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// Flipping any single byte of a valid frame never panics; if it still
    /// decodes, the result is a structurally valid frame.
    #[test]
    fn single_byte_corruption_never_panics(
        (ftag, ttag, ptag) in (0u8..7, 0u8..3, 0u8..7),
        session in 0u64..u64::MAX,
        rate in 0.001f64..1.0e18,
        (pos_seed, xor) in (0u32..u32::MAX, 1u8..255),
    ) {
        let original = frame(ftag, ttag, ptag, session, rate, false, 5, 2, 4, 8, 0, false);
        let mut wire = Vec::new();
        encode_frame(3, &original, &mut wire);
        let pos = pos_seed as usize % wire.len();
        wire[pos] ^= xor;
        if let Ok(Some((_, frame, _))) = decode_frame(&wire) {
            let mut again = Vec::new();
            encode_frame(0, &frame, &mut again);
            prop_assert!(!again.is_empty());
        }
    }
}

/// The `DecodeError` classification is stable for the canonical hostile
/// shapes (regression pin, not a property).
#[test]
fn decode_error_classification_is_stable() {
    // Empty payload: truncated at the version byte.
    assert_eq!(
        decode_payload(&[]),
        Err(DecodeError::Truncated { offset: 0 })
    );
    // Future version.
    assert_eq!(
        decode_payload(&[99, 0, 0, 6]),
        Err(DecodeError::UnsupportedVersion(99))
    );
    // Unknown frame tag.
    assert_eq!(
        decode_payload(&[1, 0, 0, 42]),
        Err(DecodeError::UnknownFrameTag(42))
    );
}
