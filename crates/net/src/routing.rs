//! Shortest-path routing for sessions.
//!
//! The paper routes every session along a shortest path (in hops) from its
//! source host to its destination host. The [`Router`] here implements
//! breadth-first search with reusable scratch buffers so that generating
//! hundreds of thousands of session paths stays cheap.

use crate::graph::{LinkId, Network, NodeId};
use crate::path::Path;
use std::collections::VecDeque;

/// Shortest-path (minimum hop) router over a [`Network`].
///
/// # Example
///
/// ```
/// use bneck_net::prelude::*;
///
/// let net = synthetic::line(3, Capacity::from_mbps(100.0), Capacity::from_mbps(200.0),
///                           Delay::from_micros(1));
/// let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
/// let mut router = Router::new(&net);
/// let path = router.shortest_path(hosts[0], hosts[1]).unwrap();
/// assert!(path.hop_count() >= 2);
/// ```
#[derive(Debug)]
pub struct Router<'a> {
    network: &'a Network,
    /// `visited_mark[n] == generation` means node `n` was reached in the
    /// current BFS; avoids clearing the whole vector between queries.
    visited_mark: Vec<u64>,
    parent_link: Vec<LinkId>,
    generation: u64,
    /// BFS frontier, reused across queries.
    queue: VecDeque<NodeId>,
    /// Reverse parent walk, reused across queries.
    link_buf: Vec<LinkId>,
    /// Source of the cached full BFS tree held in `cache_mark` /
    /// `cache_parent`, if any (see [`Router::shortest_path_cached`]).
    cache_src: Option<NodeId>,
    cache_generation: u64,
    cache_mark: Vec<u64>,
    cache_parent: Vec<LinkId>,
}

impl<'a> Router<'a> {
    /// Creates a router for the given network.
    pub fn new(network: &'a Network) -> Self {
        Router {
            network,
            visited_mark: vec![0; network.node_count()],
            parent_link: vec![LinkId(0); network.node_count()],
            generation: 0,
            queue: VecDeque::new(),
            link_buf: Vec::new(),
            cache_src: None,
            cache_generation: 0,
            cache_mark: Vec::new(),
            cache_parent: Vec::new(),
        }
    }

    /// The network this router operates on.
    pub fn network(&self) -> &Network {
        self.network
    }

    /// Computes a minimum-hop path from `src` to `dst`, or `None` when `dst`
    /// is unreachable from `src` (or `src == dst`).
    ///
    /// Hosts are only usable as path endpoints: a path never traverses a host
    /// as an intermediate node, matching the paper's model where hosts hang
    /// off a single router.
    pub fn shortest_path(&mut self, src: NodeId, dst: NodeId) -> Option<Path> {
        if src == dst {
            return None;
        }
        self.generation += 1;
        let generation = self.generation;
        self.queue.clear();
        self.visited_mark[src.index()] = generation;
        self.queue.push_back(src);
        'bfs: while let Some(node) = self.queue.pop_front() {
            for &link_id in self.network.out_links(node) {
                let link = self.network.link(link_id);
                let next = link.dst();
                if self.visited_mark[next.index()] == generation {
                    continue;
                }
                // Intermediate hosts never forward traffic.
                if next != dst && self.network.node(next).kind().is_host() {
                    continue;
                }
                self.visited_mark[next.index()] = generation;
                self.parent_link[next.index()] = link_id;
                if next == dst {
                    break 'bfs;
                }
                self.queue.push_back(next);
            }
        }
        if self.visited_mark[dst.index()] != generation {
            return None;
        }
        let parents = std::mem::take(&mut self.parent_link);
        let path = self.walk_parents(&parents, src, dst);
        self.parent_link = parents;
        Some(path)
    }

    /// [`Router::shortest_path`] through a per-source cache: the first query
    /// from `src` runs one full BFS and keeps the resulting shortest-path
    /// tree; further queries from the same source only walk parent links.
    ///
    /// The cache holds a single source (the access pattern of workload
    /// construction, which plans all sessions of one source before moving to
    /// the next), so memory stays `O(nodes)`. Paths are identical to the ones
    /// [`Router::shortest_path`] computes; a different source simply rebuilds
    /// the tree.
    pub fn shortest_path_cached(&mut self, src: NodeId, dst: NodeId) -> Option<Path> {
        if src == dst {
            return None;
        }
        if self.cache_src != Some(src) {
            self.build_cache_tree(src);
        }
        if self.cache_mark[dst.index()] != self.cache_generation {
            return None;
        }
        let parents = std::mem::take(&mut self.cache_parent);
        let path = self.walk_parents(&parents, src, dst);
        self.cache_parent = parents;
        Some(path)
    }

    /// Runs a full BFS from `src` (no early exit), recording parent links for
    /// every reachable node. Hosts are reached but never expanded, so the
    /// tree serves any destination.
    fn build_cache_tree(&mut self, src: NodeId) {
        self.generation += 1;
        let generation = self.generation;
        self.cache_mark.resize(self.network.node_count(), 0);
        self.cache_parent
            .resize(self.network.node_count(), LinkId(0));
        self.queue.clear();
        self.cache_mark[src.index()] = generation;
        self.queue.push_back(src);
        while let Some(node) = self.queue.pop_front() {
            // Intermediate hosts never forward traffic.
            if node != src && self.network.node(node).kind().is_host() {
                continue;
            }
            for &link_id in self.network.out_links(node) {
                let next = self.network.link(link_id).dst();
                if self.cache_mark[next.index()] == generation {
                    continue;
                }
                self.cache_mark[next.index()] = generation;
                self.cache_parent[next.index()] = link_id;
                self.queue.push_back(next);
            }
        }
        self.cache_src = Some(src);
        self.cache_generation = generation;
    }

    /// Builds the path from `src` to `dst` out of a parent-link tree.
    fn walk_parents(&mut self, parents: &[LinkId], src: NodeId, dst: NodeId) -> Path {
        self.link_buf.clear();
        let mut node = dst;
        while node != src {
            let link_id = parents[node.index()];
            self.link_buf.push(link_id);
            node = self.network.link(link_id).src();
        }
        let links: Vec<LinkId> = self.link_buf.iter().rev().copied().collect();
        Path::from_links(self.network, links)
    }

    /// Computes minimum hop distances (in links) from `src` to every node.
    ///
    /// Unreachable nodes get `usize::MAX`. Useful for topology diagnostics and
    /// tests.
    pub fn hop_distances(&mut self, src: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.network.node_count()];
        dist[src.index()] = 0;
        self.queue.clear();
        self.queue.push_back(src);
        while let Some(node) = self.queue.pop_front() {
            for &link_id in self.network.out_links(node) {
                let next = self.network.link(link_id).dst();
                if dist[next.index()] != usize::MAX {
                    continue;
                }
                // Hosts do not forward.
                if self.network.node(node).kind().is_host() && node != src {
                    continue;
                }
                dist[next.index()] = dist[node.index()] + 1;
                self.queue.push_back(next);
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::Capacity;
    use crate::delay::Delay;
    use crate::graph::NetworkBuilder;

    fn caps() -> (Capacity, Delay) {
        (Capacity::from_mbps(100.0), Delay::from_micros(1))
    }

    /// h0 - r0 - r1 - r2 - h2, with a shortcut r0 - r2.
    fn diamond() -> (Network, NodeId, NodeId) {
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1");
        let r2 = b.add_router("r2");
        b.connect(r0, r1, c, d);
        b.connect(r1, r2, c, d);
        b.connect(r0, r2, c, d);
        let h0 = b.add_host("h0", r0, c, d);
        let h2 = b.add_host("h2", r2, c, d);
        (b.build(), h0, h2)
    }

    #[test]
    fn takes_the_shortcut() {
        let (net, h0, h2) = diamond();
        let mut router = Router::new(&net);
        let p = router.shortest_path(h0, h2).unwrap();
        // h0 -> r0 -> r2 -> h2 (3 links), not via r1 (4 links).
        assert_eq!(p.hop_count(), 3);
        assert_eq!(p.source(), h0);
        assert_eq!(p.destination(), h2);
    }

    #[test]
    fn no_path_to_self() {
        let (net, h0, _) = diamond();
        let mut router = Router::new(&net);
        assert!(router.shortest_path(h0, h0).is_none());
    }

    #[test]
    fn unreachable_returns_none() {
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1"); // never connected to r0
        let h0 = b.add_host("h0", r0, c, d);
        let h1 = b.add_host("h1", r1, c, d);
        let net = b.build();
        let mut router = Router::new(&net);
        assert!(router.shortest_path(h0, h1).is_none());
    }

    #[test]
    fn hosts_do_not_forward() {
        // h0 and h1 both attach to r0; h2 attaches to r1. A path from h0 to h2
        // must never route "through" h1.
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1");
        b.connect(r0, r1, c, d);
        let h0 = b.add_host("h0", r0, c, d);
        let _h1 = b.add_host("h1", r0, c, d);
        let h2 = b.add_host("h2", r1, c, d);
        let net = b.build();
        let mut router = Router::new(&net);
        let p = router.shortest_path(h0, h2).unwrap();
        for n in &p.nodes()[1..p.nodes().len() - 1] {
            assert!(net.node(*n).kind().is_router());
        }
    }

    #[test]
    fn hop_distances_match_paths() {
        let (net, h0, h2) = diamond();
        let mut router = Router::new(&net);
        let dist = router.hop_distances(h0);
        let p = router.shortest_path(h0, h2).unwrap();
        assert_eq!(dist[h2.index()], p.hop_count());
    }

    #[test]
    fn cached_paths_match_uncached() {
        let (net, h0, h2) = diamond();
        let mut router = Router::new(&net);
        let uncached = router.shortest_path(h0, h2).unwrap();
        let cached = router.shortest_path_cached(h0, h2).unwrap();
        assert_eq!(uncached, cached);
        // Repeat query hits the tree; switching sources rebuilds it.
        assert_eq!(router.shortest_path_cached(h0, h2).unwrap(), uncached);
        let reverse = router.shortest_path(h2, h0).unwrap();
        assert_eq!(router.shortest_path_cached(h2, h0).unwrap(), reverse);
        assert_eq!(router.shortest_path_cached(h0, h2).unwrap(), uncached);
        assert!(router.shortest_path_cached(h0, h0).is_none());
    }

    #[test]
    fn cached_paths_agree_on_a_mesh() {
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let routers: Vec<_> = (0..6).map(|i| b.add_router(format!("r{i}"))).collect();
        for i in 0..6 {
            for j in (i + 1)..6 {
                if (i + j) % 2 == 0 {
                    b.connect(routers[i], routers[j], c, d);
                }
            }
        }
        b.connect(routers[0], routers[1], c, d);
        let hosts: Vec<_> = (0..6)
            .map(|i| b.add_host(format!("h{i}"), routers[i], c, d))
            .collect();
        let net = b.build();
        let mut router = Router::new(&net);
        for &src in &hosts {
            for &dst in &hosts {
                assert_eq!(
                    router.shortest_path(src, dst),
                    router.shortest_path_cached(src, dst),
                    "cached path diverges for {src} -> {dst}"
                );
            }
        }
    }

    #[test]
    fn cached_unreachable_returns_none() {
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1"); // never connected to r0
        let h0 = b.add_host("h0", r0, c, d);
        let h1 = b.add_host("h1", r1, c, d);
        let net = b.build();
        let mut router = Router::new(&net);
        assert!(router.shortest_path_cached(h0, h1).is_none());
        assert!(router.shortest_path_cached(h0, r0).is_some());
    }

    #[test]
    fn router_is_reusable_across_queries() {
        let (net, h0, h2) = diamond();
        let mut router = Router::new(&net);
        let a = router.shortest_path(h0, h2).unwrap();
        let b = router.shortest_path(h2, h0).unwrap();
        let c = router.shortest_path(h0, h2).unwrap();
        assert_eq!(a, c);
        assert_eq!(a.hop_count(), b.hop_count());
    }
}
