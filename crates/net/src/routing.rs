//! Shortest-path routing for sessions.
//!
//! The paper routes every session along a shortest path (in hops) from its
//! source host to its destination host. The [`Router`] here implements
//! breadth-first search with reusable scratch buffers so that generating
//! hundreds of thousands of session paths stays cheap.

use crate::graph::{LinkId, Network, NodeId};
use crate::path::Path;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Shortest-path (minimum hop) router over a [`Network`].
///
/// # Example
///
/// ```
/// use bneck_net::prelude::*;
///
/// let net = synthetic::line(3, Capacity::from_mbps(100.0), Capacity::from_mbps(200.0),
///                           Delay::from_micros(1));
/// let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
/// let mut router = Router::new(&net);
/// let path = router.shortest_path(hosts[0], hosts[1]).unwrap();
/// assert!(path.hop_count() >= 2);
/// ```
#[derive(Debug)]
pub struct Router<'a> {
    network: &'a Network,
    /// `visited_mark[n] == generation` means node `n` was reached in the
    /// current BFS; avoids clearing the whole vector between queries.
    visited_mark: Vec<u64>,
    parent_link: Vec<LinkId>,
    generation: u64,
    /// BFS frontier, reused across queries.
    queue: VecDeque<NodeId>,
    /// Reverse parent walk, reused across queries.
    link_buf: Vec<LinkId>,
    /// Source of the cached full BFS tree held in `cache_mark` /
    /// `cache_parent`, if any (see [`Router::shortest_path_cached`]).
    cache_src: Option<NodeId>,
    cache_generation: u64,
    cache_mark: Vec<u64>,
    cache_parent: Vec<LinkId>,
    /// Dense index of each router among the routers (`u32::MAX` for hosts);
    /// built on first use of [`Router::host_path_cached`].
    router_index: Vec<u32>,
    /// Router nodes in dense-index order.
    router_nodes: Vec<NodeId>,
    /// Per-source-router BFS parent trees over the router-only subgraph,
    /// keyed by source router and indexed by dense router index
    /// (`LinkId(u32::MAX)` marks unreachable). Hosts never forward, so a
    /// host-to-host shortest path is its access links around a router-level
    /// shortest path; router graphs stay small (the paper's Big network has
    /// 11,000 routers) even when hundreds of thousands of hosts attach, so
    /// these trees make planning huge session populations cheap.
    router_trees: BTreeMap<NodeId, Box<[LinkId]>>,
}

/// Sentinel parent for unreachable routers in a cached router tree.
const NO_LINK: LinkId = LinkId(u32::MAX);

impl<'a> Router<'a> {
    /// Creates a router for the given network.
    pub fn new(network: &'a Network) -> Self {
        Router {
            network,
            visited_mark: vec![0; network.node_count()],
            parent_link: vec![LinkId(0); network.node_count()],
            generation: 0,
            queue: VecDeque::new(),
            link_buf: Vec::new(),
            cache_src: None,
            cache_generation: 0,
            cache_mark: Vec::new(),
            cache_parent: Vec::new(),
            router_index: Vec::new(),
            router_nodes: Vec::new(),
            router_trees: BTreeMap::new(),
        }
    }

    /// The network this router operates on.
    pub fn network(&self) -> &Network {
        self.network
    }

    /// Computes a minimum-hop path from `src` to `dst`, or `None` when `dst`
    /// is unreachable from `src` (or `src == dst`).
    ///
    /// Hosts are only usable as path endpoints: a path never traverses a host
    /// as an intermediate node, matching the paper's model where hosts hang
    /// off a single router.
    pub fn shortest_path(&mut self, src: NodeId, dst: NodeId) -> Option<Path> {
        if src == dst {
            return None;
        }
        self.generation += 1;
        let generation = self.generation;
        self.queue.clear();
        self.visited_mark[src.index()] = generation;
        self.queue.push_back(src);
        'bfs: while let Some(node) = self.queue.pop_front() {
            for &link_id in self.network.out_links(node) {
                let link = self.network.link(link_id);
                let next = link.dst();
                if self.visited_mark[next.index()] == generation {
                    continue;
                }
                // Intermediate hosts never forward traffic.
                if next != dst && self.network.node(next).kind().is_host() {
                    continue;
                }
                self.visited_mark[next.index()] = generation;
                self.parent_link[next.index()] = link_id;
                if next == dst {
                    break 'bfs;
                }
                self.queue.push_back(next);
            }
        }
        if self.visited_mark[dst.index()] != generation {
            return None;
        }
        let parents = std::mem::take(&mut self.parent_link);
        let path = self.walk_parents(&parents, src, dst);
        self.parent_link = parents;
        Some(path)
    }

    /// [`Router::shortest_path`] through a per-source cache: the first query
    /// from `src` runs one full BFS and keeps the resulting shortest-path
    /// tree; further queries from the same source only walk parent links.
    ///
    /// The cache holds a single source (the access pattern of workload
    /// construction, which plans all sessions of one source before moving to
    /// the next), so memory stays `O(nodes)`. Paths are identical to the ones
    /// [`Router::shortest_path`] computes; a different source simply rebuilds
    /// the tree.
    pub fn shortest_path_cached(&mut self, src: NodeId, dst: NodeId) -> Option<Path> {
        if src == dst {
            return None;
        }
        if self.cache_src != Some(src) {
            self.build_cache_tree(src);
        }
        if self.cache_mark[dst.index()] != self.cache_generation {
            return None;
        }
        let parents = std::mem::take(&mut self.cache_parent);
        let path = self.walk_parents(&parents, src, dst);
        self.cache_parent = parents;
        Some(path)
    }

    /// Runs a full BFS from `src` (no early exit), recording parent links for
    /// every reachable node. Hosts are reached but never expanded, so the
    /// tree serves any destination.
    fn build_cache_tree(&mut self, src: NodeId) {
        self.generation += 1;
        let generation = self.generation;
        self.cache_mark.resize(self.network.node_count(), 0);
        self.cache_parent
            .resize(self.network.node_count(), LinkId(0));
        self.queue.clear();
        self.cache_mark[src.index()] = generation;
        self.queue.push_back(src);
        while let Some(node) = self.queue.pop_front() {
            // Intermediate hosts never forward traffic.
            if node != src && self.network.node(node).kind().is_host() {
                continue;
            }
            for &link_id in self.network.out_links(node) {
                let next = self.network.link(link_id).dst();
                if self.cache_mark[next.index()] == generation {
                    continue;
                }
                self.cache_mark[next.index()] = generation;
                self.cache_parent[next.index()] = link_id;
                self.queue.push_back(next);
            }
        }
        self.cache_src = Some(src);
        self.cache_generation = generation;
    }

    /// [`Router::shortest_path`] between two *hosts*, through a per-router
    /// tree cache: the path is the source's access link, a shortest path over
    /// the router-only subgraph, and the destination's access link. One BFS
    /// over the (small) router graph is kept per source router, so planning
    /// hundreds of thousands of host-to-host sessions costs at most one
    /// router-graph BFS per stub router instead of one whole-network BFS per
    /// session.
    ///
    /// Paths have the same (minimum) hop count as [`Router::shortest_path`];
    /// among equal-length paths the tie-break may differ. Returns `None` when
    /// the hosts are equal or not connected.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not a host.
    pub fn host_path_cached(&mut self, src: NodeId, dst: NodeId) -> Option<Path> {
        assert!(
            self.network.node(src).kind().is_host() && self.network.node(dst).kind().is_host(),
            "host_path_cached requires host endpoints"
        );
        if src == dst {
            return None;
        }
        // A host's single outgoing link leads to its attachment router.
        let src_access = self.network.out_links(src)[0];
        let src_router = self.network.link(src_access).dst();
        let dst_up = self.network.out_links(dst)[0];
        let dst_router = self.network.link(dst_up).dst();
        let dst_access = self.network.reverse_link(dst_up)?;
        if src_router == dst_router {
            return Some(Path::from_links(self.network, vec![src_access, dst_access]));
        }
        self.ensure_router_index();
        if !self.router_trees.contains_key(&src_router) {
            let tree = self.build_router_tree(src_router);
            self.router_trees.insert(src_router, tree);
        }
        let tree = &self.router_trees[&src_router];
        // Walk the tree from the destination's router back to the source's.
        let mut buf = std::mem::take(&mut self.link_buf);
        buf.clear();
        buf.push(dst_access);
        let mut node = dst_router;
        while node != src_router {
            let parent = tree[self.router_index[node.index()] as usize];
            if parent == NO_LINK {
                self.link_buf = buf;
                return None;
            }
            buf.push(parent);
            node = self.network.link(parent).src();
        }
        buf.push(src_access);
        let links: Vec<LinkId> = buf.iter().rev().copied().collect();
        self.link_buf = buf;
        Some(Path::from_links(self.network, links))
    }

    /// Builds the dense router index on first use.
    fn ensure_router_index(&mut self) {
        if !self.router_index.is_empty() {
            return;
        }
        self.router_index = vec![u32::MAX; self.network.node_count()];
        for node in self.network.routers() {
            self.router_index[node.id().index()] = self.router_nodes.len() as u32;
            self.router_nodes.push(node.id());
        }
    }

    /// Runs a BFS from `root` over the router-only subgraph, recording for
    /// every router the link leading back toward `root`.
    fn build_router_tree(&mut self, root: NodeId) -> Box<[LinkId]> {
        build_router_tree_with_scratch(
            self.network,
            &self.router_index,
            self.router_nodes.len(),
            root,
            &mut self.visited_mark,
            &mut self.generation,
            &mut self.queue,
        )
    }

    /// Pre-builds the router-tree cache entries serving the access routers of
    /// `hosts`, splitting construction across up to `threads` scoped worker
    /// threads. Roots already cached are skipped; non-host nodes and hosts
    /// without an access link are ignored. Returns the number of trees built.
    ///
    /// Each tree is a pure function of the network (see
    /// [`Router::host_path_cached`]), so the cache contents — and every path
    /// later served from them — are bit-identical at any thread count; only
    /// wall-clock time changes.
    pub fn warm_router_trees(&mut self, hosts: &[NodeId], threads: usize) -> usize {
        self.ensure_router_index();
        let mut seen = BTreeSet::new();
        let mut roots: Vec<NodeId> = Vec::new();
        for &host in hosts {
            if !self.network.node(host).kind().is_host() {
                continue;
            }
            let Some(&access) = self.network.out_links(host).first() else {
                continue;
            };
            let root = self.network.link(access).dst();
            if !self.router_trees.contains_key(&root) && seen.insert(root) {
                roots.push(root);
            }
        }
        let built = roots.len();
        if roots.is_empty() {
            return 0;
        }
        let threads = threads.clamp(1, roots.len());
        if threads == 1 {
            for root in roots {
                let tree = self.build_router_tree(root);
                self.router_trees.insert(root, tree);
            }
            return built;
        }
        let network = self.network;
        let router_index: &[u32] = &self.router_index;
        let tree_len = self.router_nodes.len();
        let shards: Vec<Vec<(NodeId, Box<[LinkId]>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let shard: Vec<NodeId> =
                        roots.iter().copied().skip(t).step_by(threads).collect();
                    scope.spawn(move || {
                        let mut mark = vec![0u64; network.node_count()];
                        let mut generation = 0u64;
                        let mut queue = VecDeque::new();
                        shard
                            .into_iter()
                            .map(|root| {
                                let tree = build_router_tree_with_scratch(
                                    network,
                                    router_index,
                                    tree_len,
                                    root,
                                    &mut mark,
                                    &mut generation,
                                    &mut queue,
                                );
                                (root, tree)
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("router-tree worker panicked"))
                .collect()
        });
        for shard in shards {
            for (root, tree) in shard {
                self.router_trees.insert(root, tree);
            }
        }
        built
    }

    /// Builds the path from `src` to `dst` out of a parent-link tree.
    fn walk_parents(&mut self, parents: &[LinkId], src: NodeId, dst: NodeId) -> Path {
        self.link_buf.clear();
        let mut node = dst;
        while node != src {
            let link_id = parents[node.index()];
            self.link_buf.push(link_id);
            node = self.network.link(link_id).src();
        }
        let links: Vec<LinkId> = self.link_buf.iter().rev().copied().collect();
        Path::from_links(self.network, links)
    }

    /// Computes minimum hop distances (in links) from `src` to every node.
    ///
    /// Unreachable nodes get `usize::MAX`. Useful for topology diagnostics and
    /// tests.
    pub fn hop_distances(&mut self, src: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.network.node_count()];
        dist[src.index()] = 0;
        self.queue.clear();
        self.queue.push_back(src);
        while let Some(node) = self.queue.pop_front() {
            for &link_id in self.network.out_links(node) {
                let next = self.network.link(link_id).dst();
                if dist[next.index()] != usize::MAX {
                    continue;
                }
                // Hosts do not forward.
                if self.network.node(node).kind().is_host() && node != src {
                    continue;
                }
                dist[next.index()] = dist[node.index()] + 1;
                self.queue.push_back(next);
            }
        }
        dist
    }
}

/// BFS from `root` over the router-only subgraph using caller-provided
/// scratch, recording for every router the link leading back toward `root`.
/// A free function (rather than a method) so parallel tree warming can run it
/// on worker threads against a shared `&Network`; the single-threaded path
/// goes through the same code, which makes "identical trees at any thread
/// count" true by construction.
fn build_router_tree_with_scratch(
    network: &Network,
    router_index: &[u32],
    tree_len: usize,
    root: NodeId,
    mark: &mut [u64],
    generation: &mut u64,
    queue: &mut VecDeque<NodeId>,
) -> Box<[LinkId]> {
    let mut tree = vec![NO_LINK; tree_len].into_boxed_slice();
    *generation += 1;
    let generation = *generation;
    mark[root.index()] = generation;
    queue.clear();
    queue.push_back(root);
    while let Some(node) = queue.pop_front() {
        for &link_id in network.out_links(node) {
            let next = network.link(link_id).dst();
            if mark[next.index()] == generation || network.node(next).kind().is_host() {
                continue;
            }
            mark[next.index()] = generation;
            tree[router_index[next.index()] as usize] = link_id;
            queue.push_back(next);
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::Capacity;
    use crate::delay::Delay;
    use crate::graph::NetworkBuilder;

    fn caps() -> (Capacity, Delay) {
        (Capacity::from_mbps(100.0), Delay::from_micros(1))
    }

    /// h0 - r0 - r1 - r2 - h2, with a shortcut r0 - r2.
    fn diamond() -> (Network, NodeId, NodeId) {
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1");
        let r2 = b.add_router("r2");
        b.connect(r0, r1, c, d);
        b.connect(r1, r2, c, d);
        b.connect(r0, r2, c, d);
        let h0 = b.add_host("h0", r0, c, d);
        let h2 = b.add_host("h2", r2, c, d);
        (b.build(), h0, h2)
    }

    #[test]
    fn takes_the_shortcut() {
        let (net, h0, h2) = diamond();
        let mut router = Router::new(&net);
        let p = router.shortest_path(h0, h2).unwrap();
        // h0 -> r0 -> r2 -> h2 (3 links), not via r1 (4 links).
        assert_eq!(p.hop_count(), 3);
        assert_eq!(p.source(), h0);
        assert_eq!(p.destination(), h2);
    }

    #[test]
    fn no_path_to_self() {
        let (net, h0, _) = diamond();
        let mut router = Router::new(&net);
        assert!(router.shortest_path(h0, h0).is_none());
    }

    #[test]
    fn unreachable_returns_none() {
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1"); // never connected to r0
        let h0 = b.add_host("h0", r0, c, d);
        let h1 = b.add_host("h1", r1, c, d);
        let net = b.build();
        let mut router = Router::new(&net);
        assert!(router.shortest_path(h0, h1).is_none());
    }

    #[test]
    fn hosts_do_not_forward() {
        // h0 and h1 both attach to r0; h2 attaches to r1. A path from h0 to h2
        // must never route "through" h1.
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1");
        b.connect(r0, r1, c, d);
        let h0 = b.add_host("h0", r0, c, d);
        let _h1 = b.add_host("h1", r0, c, d);
        let h2 = b.add_host("h2", r1, c, d);
        let net = b.build();
        let mut router = Router::new(&net);
        let p = router.shortest_path(h0, h2).unwrap();
        for n in &p.nodes()[1..p.nodes().len() - 1] {
            assert!(net.node(*n).kind().is_router());
        }
    }

    #[test]
    fn hop_distances_match_paths() {
        let (net, h0, h2) = diamond();
        let mut router = Router::new(&net);
        let dist = router.hop_distances(h0);
        let p = router.shortest_path(h0, h2).unwrap();
        assert_eq!(dist[h2.index()], p.hop_count());
    }

    #[test]
    fn cached_paths_match_uncached() {
        let (net, h0, h2) = diamond();
        let mut router = Router::new(&net);
        let uncached = router.shortest_path(h0, h2).unwrap();
        let cached = router.shortest_path_cached(h0, h2).unwrap();
        assert_eq!(uncached, cached);
        // Repeat query hits the tree; switching sources rebuilds it.
        assert_eq!(router.shortest_path_cached(h0, h2).unwrap(), uncached);
        let reverse = router.shortest_path(h2, h0).unwrap();
        assert_eq!(router.shortest_path_cached(h2, h0).unwrap(), reverse);
        assert_eq!(router.shortest_path_cached(h0, h2).unwrap(), uncached);
        assert!(router.shortest_path_cached(h0, h0).is_none());
    }

    #[test]
    fn cached_paths_agree_on_a_mesh() {
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let routers: Vec<_> = (0..6).map(|i| b.add_router(format!("r{i}"))).collect();
        for i in 0..6 {
            for j in (i + 1)..6 {
                if (i + j) % 2 == 0 {
                    b.connect(routers[i], routers[j], c, d);
                }
            }
        }
        b.connect(routers[0], routers[1], c, d);
        let hosts: Vec<_> = (0..6)
            .map(|i| b.add_host(format!("h{i}"), routers[i], c, d))
            .collect();
        let net = b.build();
        let mut router = Router::new(&net);
        for &src in &hosts {
            for &dst in &hosts {
                assert_eq!(
                    router.shortest_path(src, dst),
                    router.shortest_path_cached(src, dst),
                    "cached path diverges for {src} -> {dst}"
                );
            }
        }
    }

    #[test]
    fn cached_unreachable_returns_none() {
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1"); // never connected to r0
        let h0 = b.add_host("h0", r0, c, d);
        let h1 = b.add_host("h1", r1, c, d);
        let net = b.build();
        let mut router = Router::new(&net);
        assert!(router.shortest_path_cached(h0, h1).is_none());
        assert!(router.shortest_path_cached(h0, r0).is_some());
    }

    #[test]
    fn host_path_cached_matches_bfs_hop_counts() {
        let net = crate::topology::transit_stub::paper_network(
            crate::topology::transit_stub::NetworkSize::Small,
            40,
            crate::topology::DelayModel::Lan,
            23,
        );
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        for i in 0..hosts.len() {
            let a = hosts[i];
            let b = hosts[(i * 7 + 3) % hosts.len()];
            let bfs = router.shortest_path(a, b);
            let cached = router.host_path_cached(a, b);
            match (bfs, cached) {
                (None, None) => {}
                (Some(p), Some(q)) => {
                    assert_eq!(p.hop_count(), q.hop_count(), "{a} -> {b}");
                    assert_eq!(q.source(), a);
                    assert_eq!(q.destination(), b);
                    // The cached path is a valid chain of existing links.
                    for pair in q.links().windows(2) {
                        assert_eq!(net.link(pair[0]).dst(), net.link(pair[1]).src());
                    }
                }
                (p, q) => panic!("reachability disagrees for {a} -> {b}: {p:?} vs {q:?}"),
            }
        }
    }

    #[test]
    fn host_path_cached_same_router_and_self() {
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let h0 = b.add_host("h0", r0, c, d);
        let h1 = b.add_host("h1", r0, c, d);
        let net = b.build();
        let mut router = Router::new(&net);
        assert!(router.host_path_cached(h0, h0).is_none());
        let p = router.host_path_cached(h0, h1).unwrap();
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.source(), h0);
        assert_eq!(p.destination(), h1);
    }

    #[test]
    fn host_path_cached_unreachable_returns_none() {
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1"); // never connected to r0
        let h0 = b.add_host("h0", r0, c, d);
        let h1 = b.add_host("h1", r1, c, d);
        let net = b.build();
        let mut router = Router::new(&net);
        assert!(router.host_path_cached(h0, h1).is_none());
    }

    #[test]
    fn warmed_trees_serve_identical_paths_at_any_thread_count() {
        let net = crate::topology::transit_stub::paper_network(
            crate::topology::transit_stub::NetworkSize::Small,
            40,
            crate::topology::DelayModel::Lan,
            23,
        );
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut lazy = Router::new(&net);
        let mut warmed: Vec<(usize, Router<'_>)> = [1usize, 2, 4]
            .into_iter()
            .map(|threads| {
                let mut r = Router::new(&net);
                let built = r.warm_router_trees(&hosts, threads);
                assert!(built > 0, "warming must build at least one tree");
                // A second warm finds everything cached.
                assert_eq!(r.warm_router_trees(&hosts, threads), 0);
                (threads, r)
            })
            .collect();
        for i in 0..hosts.len() {
            let a = hosts[i];
            let b = hosts[(i * 7 + 3) % hosts.len()];
            let want = lazy.host_path_cached(a, b);
            for (threads, r) in warmed.iter_mut() {
                assert_eq!(
                    r.host_path_cached(a, b),
                    want,
                    "warmed path ({threads} threads) diverges for {a} -> {b}"
                );
            }
        }
    }

    #[test]
    fn warming_skips_non_hosts_and_empty_input() {
        let (net, h0, _) = diamond();
        let mut router = Router::new(&net);
        assert_eq!(router.warm_router_trees(&[], 4), 0);
        let r0 = net.routers().next().unwrap().id();
        assert_eq!(router.warm_router_trees(&[r0], 4), 0);
        assert_eq!(router.warm_router_trees(&[h0, h0], 4), 1);
    }

    #[test]
    fn router_is_reusable_across_queries() {
        let (net, h0, h2) = diamond();
        let mut router = Router::new(&net);
        let a = router.shortest_path(h0, h2).unwrap();
        let b = router.shortest_path(h2, h0).unwrap();
        let c = router.shortest_path(h0, h2).unwrap();
        assert_eq!(a, c);
        assert_eq!(a.hop_count(), b.hop_count());
    }
}
