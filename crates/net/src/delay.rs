//! Propagation delay of a link, in nanoseconds.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul};

/// Propagation delay of a link.
///
/// Delays are stored with nanosecond granularity, which is fine enough for the
/// paper's two scenarios (1 µs LAN links and 1–10 ms WAN links) while keeping
/// simulated time exact and totally ordered.
///
/// # Example
///
/// ```
/// use bneck_net::Delay;
/// let d = Delay::from_micros(1);
/// assert_eq!(d.as_nanos(), 1_000);
/// assert_eq!(Delay::from_millis(10).as_micros(), 10_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Delay(u64);

impl Delay {
    /// A zero delay.
    pub const ZERO: Delay = Delay(0);

    /// Creates a delay from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Delay(ns)
    }

    /// Creates a delay from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Delay(us * 1_000)
    }

    /// Creates a delay from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Delay(ms * 1_000_000)
    }

    /// Creates a delay from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Delay(s * 1_000_000_000)
    }

    /// Returns the delay in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the delay in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the delay in seconds as a floating point number.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl fmt::Display for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} s", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} ns", self.0)
        }
    }
}

impl Add for Delay {
    type Output = Delay;
    fn add(self, rhs: Delay) -> Delay {
        Delay(self.0 + rhs.0)
    }
}

impl Mul<u64> for Delay {
    type Output = Delay;
    fn mul(self, rhs: u64) -> Delay {
        Delay(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(Delay::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Delay::from_millis(2).as_micros(), 2_000);
        assert_eq!(Delay::from_secs(1).as_nanos(), 1_000_000_000);
        assert!((Delay::from_millis(500).as_secs_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_arithmetic() {
        assert!(Delay::from_micros(1) < Delay::from_millis(1));
        assert_eq!(
            Delay::from_micros(1) + Delay::from_micros(2),
            Delay::from_micros(3)
        );
        assert_eq!(Delay::from_micros(2) * 3, Delay::from_micros(6));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Delay::from_nanos(12).to_string(), "12 ns");
        assert_eq!(Delay::from_micros(5).to_string(), "5.000 us");
        assert_eq!(Delay::from_millis(7).to_string(), "7.000 ms");
        assert_eq!(Delay::from_secs(2).to_string(), "2.000 s");
    }
}
