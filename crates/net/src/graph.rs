//! The directed network graph: nodes (routers and hosts) and capacitated
//! links with propagation delays.

use crate::capacity::Capacity;
use crate::delay::Delay;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a node (router or host) in a [`Network`].
///
/// Node identifiers are dense indices assigned by the [`NetworkBuilder`] in
/// insertion order, so they can be used to index per-node vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the identifier as an index usable with per-node vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a directed link in a [`Network`].
///
/// Link identifiers are dense indices assigned in insertion order, so they can
/// be used to index per-link vectors (the B-Neck `RouterLink` tasks are stored
/// that way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct LinkId(pub u32);

impl LinkId {
    /// Returns the identifier as an index usable with per-link vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Hierarchy level of a router in a transit–stub topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum RouterLevel {
    /// Backbone (transit domain) router.
    Transit,
    /// Edge (stub domain) router; hosts attach to stub routers.
    Stub,
}

/// The role of a node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum NodeKind {
    /// An interior router; sessions only traverse routers.
    Router(RouterLevel),
    /// A host; sessions start and end at hosts, and each host connects to
    /// exactly one router through a dedicated link.
    Host,
}

impl NodeKind {
    /// Returns `true` if the node is a host.
    pub fn is_host(self) -> bool {
        matches!(self, NodeKind::Host)
    }

    /// Returns `true` if the node is a router.
    pub fn is_router(self) -> bool {
        matches!(self, NodeKind::Router(_))
    }
}

/// A node of the network graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Node {
    id: NodeId,
    kind: NodeKind,
    name: String,
}

impl Node {
    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's role.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The node's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A directed, capacitated link of the network graph.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Link {
    id: LinkId,
    src: NodeId,
    dst: NodeId,
    capacity: Capacity,
    delay: Delay,
}

impl Link {
    /// The link's identifier.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// The node the link leaves from.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The node the link arrives at.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The link's bandwidth available for data traffic (`Ce` in the paper).
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// The link's propagation delay.
    pub fn delay(&self) -> Delay {
        self.delay
    }
}

/// An immutable network graph of routers, hosts and directed links.
///
/// Built with a [`NetworkBuilder`]; once built, the topology does not change
/// (the paper keeps the physical network fixed and only varies the session
/// population).
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Adjacency in compressed sparse row form: the outgoing links of node
    /// `n` are `out_link_ids[out_offsets[n] .. out_offsets[n + 1]]`. One flat
    /// allocation keeps BFS traversals on a contiguous cache-friendly array.
    out_offsets: Vec<u32>,
    out_link_ids: Vec<LinkId>,
    /// Lookup from `(src, dst)` to the connecting link, if any.
    by_endpoints: BTreeMap<(NodeId, NodeId), LinkId>,
}

impl Network {
    /// Number of nodes (routers plus hosts).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of router nodes.
    pub fn router_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind().is_router()).count()
    }

    /// Number of host nodes.
    pub fn host_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind().is_host()).count()
    }

    /// Returns the node with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this network.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns the link with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this network.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Iterates over all nodes in identifier order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Iterates over all links in identifier order.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Iterates over all host nodes.
    pub fn hosts(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.kind().is_host())
    }

    /// Iterates over all router nodes.
    pub fn routers(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.kind().is_router())
    }

    /// Outgoing links of a node.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        let start = self.out_offsets[node.index()] as usize;
        let end = self.out_offsets[node.index() + 1] as usize;
        &self.out_link_ids[start..end]
    }

    /// Returns the link from `src` to `dst`, if one exists.
    pub fn link_between(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.by_endpoints.get(&(src, dst)).copied()
    }

    /// Returns the reverse link of `link` (the link connecting the same nodes
    /// in the opposite direction), if one exists.
    ///
    /// The paper assumes connected nodes have links in both directions, so for
    /// networks built by the provided generators this never returns `None`.
    pub fn reverse_link(&self, link: LinkId) -> Option<LinkId> {
        let l = self.link(link);
        self.link_between(l.dst(), l.src())
    }

    /// Computes the shortest path (in hops) from `src` to `dst`.
    ///
    /// Convenience wrapper over [`crate::routing::Router::shortest_path`] for
    /// one-off queries; repeated queries should use a [`crate::routing::Router`]
    /// which reuses its internal scratch buffers.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<crate::path::Path> {
        crate::routing::Router::new(self).shortest_path(src, dst)
    }
}

/// Incremental builder for a [`Network`].
///
/// # Example
///
/// ```
/// use bneck_net::prelude::*;
///
/// let mut b = NetworkBuilder::new();
/// let r0 = b.add_router("r0");
/// let r1 = b.add_router("r1");
/// b.connect(r0, r1, Capacity::from_mbps(200.0), Delay::from_micros(1));
/// let h0 = b.add_host("h0", r0, Capacity::from_mbps(100.0), Delay::from_micros(1));
/// let h1 = b.add_host("h1", r1, Capacity::from_mbps(100.0), Delay::from_micros(1));
/// let net = b.build();
/// assert_eq!(net.router_count(), 2);
/// assert_eq!(net.host_count(), 2);
/// assert_eq!(net.shortest_path(h0, h1).unwrap().hop_count(), 3);
/// ```
#[derive(Debug, Default, Clone)]
pub struct NetworkBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
    by_endpoints: BTreeMap<(NodeId, NodeId), LinkId>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a stub-level router with the given name and returns its identifier.
    pub fn add_router(&mut self, name: impl Into<String>) -> NodeId {
        self.add_router_at(name, RouterLevel::Stub)
    }

    /// Adds a router at a specific hierarchy level.
    pub fn add_router_at(&mut self, name: impl Into<String>, level: RouterLevel) -> NodeId {
        self.push_node(NodeKind::Router(level), name.into())
    }

    /// Adds a host attached to `router` with a dedicated bidirectional link of
    /// the given capacity and delay, returning the host's identifier.
    ///
    /// # Panics
    ///
    /// Panics if `router` is not a router node.
    pub fn add_host(
        &mut self,
        name: impl Into<String>,
        router: NodeId,
        capacity: Capacity,
        delay: Delay,
    ) -> NodeId {
        assert!(
            self.nodes[router.index()].kind().is_router(),
            "hosts must attach to routers"
        );
        let host = self.push_node(NodeKind::Host, name.into());
        self.connect(host, router, capacity, delay);
        host
    }

    /// Adds a pair of directed links (one in each direction) between `a` and
    /// `b`, both with the given capacity and delay.
    ///
    /// Returns the identifiers of the `a → b` and `b → a` links.
    ///
    /// # Panics
    ///
    /// Panics if a link between the two nodes already exists, or `a == b`.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: Capacity,
        delay: Delay,
    ) -> (LinkId, LinkId) {
        let ab = self.add_directed_link(a, b, capacity, delay);
        let ba = self.add_directed_link(b, a, capacity, delay);
        (ab, ba)
    }

    /// Adds a single directed link from `src` to `dst`.
    ///
    /// Most callers want [`NetworkBuilder::connect`]; this is exposed for
    /// asymmetric test topologies.
    ///
    /// # Panics
    ///
    /// Panics if the link already exists or `src == dst`.
    pub fn add_directed_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: Capacity,
        delay: Delay,
    ) -> LinkId {
        assert_ne!(src, dst, "self-loops are not allowed");
        assert!(
            !self.by_endpoints.contains_key(&(src, dst)),
            "link {src} -> {dst} already exists"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            src,
            dst,
            capacity,
            delay,
        });
        self.by_endpoints.insert((src, dst), id);
        id
    }

    /// Returns `true` if a link from `src` to `dst` has been added.
    pub fn has_link(&self, src: NodeId, dst: NodeId) -> bool {
        self.by_endpoints.contains_key(&(src, dst))
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Finalizes the builder into an immutable [`Network`].
    pub fn build(self) -> Network {
        // Counting sort of the links by source node into CSR form, preserving
        // insertion order within each node (links are appended id-ascending).
        let mut out_offsets = vec![0u32; self.nodes.len() + 1];
        for link in &self.links {
            out_offsets[link.src().index() + 1] += 1;
        }
        for i in 1..out_offsets.len() {
            out_offsets[i] += out_offsets[i - 1];
        }
        let mut cursor: Vec<u32> = out_offsets[..self.nodes.len()].to_vec();
        let mut out_link_ids = vec![LinkId(0); self.links.len()];
        for link in &self.links {
            let c = &mut cursor[link.src().index()];
            out_link_ids[*c as usize] = link.id();
            *c += 1;
        }
        Network {
            nodes: self.nodes,
            links: self.links,
            out_offsets,
            out_link_ids,
            by_endpoints: self.by_endpoints,
        }
    }

    fn push_node(&mut self, kind: NodeKind, name: String) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { id, kind, name });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> (Capacity, Delay) {
        (Capacity::from_mbps(100.0), Delay::from_micros(1))
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1");
        b.connect(r0, r1, c, d);
        let h = b.add_host("h", r0, c, d);
        assert_eq!(r0, NodeId(0));
        assert_eq!(r1, NodeId(1));
        assert_eq!(h, NodeId(2));
        let net = b.build();
        assert_eq!(net.node_count(), 3);
        // two links between routers, two between host and router
        assert_eq!(net.link_count(), 4);
        assert_eq!(net.router_count(), 2);
        assert_eq!(net.host_count(), 1);
    }

    #[test]
    fn link_lookup_and_reverse() {
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1");
        let (ab, ba) = b.connect(r0, r1, c, d);
        let net = b.build();
        assert_eq!(net.link_between(r0, r1), Some(ab));
        assert_eq!(net.link_between(r1, r0), Some(ba));
        assert_eq!(net.reverse_link(ab), Some(ba));
        assert_eq!(net.reverse_link(ba), Some(ab));
        assert_eq!(net.link(ab).src(), r0);
        assert_eq!(net.link(ab).dst(), r1);
    }

    #[test]
    fn out_links_are_indexed_per_node() {
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1");
        let r2 = b.add_router("r2");
        b.connect(r0, r1, c, d);
        b.connect(r0, r2, c, d);
        let net = b.build();
        assert_eq!(net.out_links(r0).len(), 2);
        assert_eq!(net.out_links(r1).len(), 1);
        assert_eq!(net.out_links(r2).len(), 1);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_links_rejected() {
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1");
        b.connect(r0, r1, c, d);
        b.connect(r0, r1, c, d);
    }

    #[test]
    #[should_panic(expected = "hosts must attach to routers")]
    fn host_must_attach_to_router() {
        let (c, d) = caps();
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let h0 = b.add_host("h0", r0, c, d);
        b.add_host("h1", h0, c, d);
    }

    #[test]
    fn node_kind_predicates() {
        assert!(NodeKind::Host.is_host());
        assert!(!NodeKind::Host.is_router());
        assert!(NodeKind::Router(RouterLevel::Transit).is_router());
        assert!(!NodeKind::Router(RouterLevel::Stub).is_host());
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(7).to_string(), "e7");
    }
}
