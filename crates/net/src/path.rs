//! Session paths: ordered lists of directed links from a source host to a
//! destination host.

use crate::graph::{LinkId, Network, NodeId};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The static path `π(s)` of a session: the ordered list of directed links
/// from the source host to the destination host.
///
/// Packets sent along the path are *downstream* packets; packets sent along
/// the reverse sequence of nodes are *upstream* packets (Section II of the
/// paper).
///
/// The link and node sequences are stored in shared `Arc` slices, so cloning
/// a path (the workload planner, the harness and the oracle's session-set
/// snapshots all keep one) is two reference-count bumps, not a deep copy.
/// (With the real `serde` enabled, `Arc<[T]>` serialization needs serde's
/// `rc` feature.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Path {
    links: Arc<[LinkId]>,
    nodes: Arc<[NodeId]>,
}

impl Path {
    /// Builds a path from the ordered list of links it traverses.
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty or the links do not form a connected chain
    /// in `network`.
    pub fn from_links(network: &Network, links: Vec<LinkId>) -> Self {
        assert!(!links.is_empty(), "a path must contain at least one link");
        let mut nodes = Vec::with_capacity(links.len() + 1);
        nodes.push(network.link(links[0]).src());
        for pair in links.windows(2) {
            assert_eq!(
                network.link(pair[0]).dst(),
                network.link(pair[1]).src(),
                "links do not form a chain"
            );
        }
        for l in &links {
            nodes.push(network.link(*l).dst());
        }
        Path {
            links: links.into(),
            nodes: nodes.into(),
        }
    }

    /// The links of the path, in downstream order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// The nodes of the path, from source host to destination host.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The source host of the path.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The destination host of the path.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("paths are never empty")
    }

    /// The first link of the path (the link owned by the `SourceNode` task).
    pub fn first_link(&self) -> LinkId {
        self.links[0]
    }

    /// The last link of the path.
    pub fn last_link(&self) -> LinkId {
        *self.links.last().expect("paths are never empty")
    }

    /// Number of links in the path.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// Returns the link that follows `link` on the path (downstream
    /// direction), or `None` if `link` is the last one.
    pub fn next_downstream(&self, link: LinkId) -> Option<LinkId> {
        let idx = self.position(link)?;
        self.links.get(idx + 1).copied()
    }

    /// Returns the link that precedes `link` on the path (i.e. the next hop in
    /// the upstream direction), or `None` if `link` is the first one.
    pub fn next_upstream(&self, link: LinkId) -> Option<LinkId> {
        let idx = self.position(link)?;
        if idx == 0 {
            None
        } else {
            Some(self.links[idx - 1])
        }
    }

    /// Returns the index of `link` within the path, if present.
    pub fn position(&self, link: LinkId) -> Option<usize> {
        self.links.iter().position(|l| *l == link)
    }

    /// Returns `true` if the path traverses `link`.
    pub fn contains(&self, link: LinkId) -> bool {
        self.position(link).is_some()
    }

    /// Total propagation delay accumulated along the path.
    pub fn total_delay(&self, network: &Network) -> crate::delay::Delay {
        self.links.iter().fold(crate::delay::Delay::ZERO, |acc, l| {
            acc + network.link(*l).delay()
        })
    }

    /// The smallest link capacity along the path (an upper bound on any rate
    /// assignable to a session following the path).
    pub fn min_capacity(&self, network: &Network) -> crate::capacity::Capacity {
        self.links
            .iter()
            .map(|l| network.link(*l).capacity())
            .fold(crate::capacity::Capacity::INFINITE, |acc, c| acc.min(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::Capacity;
    use crate::delay::Delay;
    use crate::graph::NetworkBuilder;

    fn line3() -> (Network, Vec<NodeId>) {
        // h0 - r0 - r1 - h1
        let c = Capacity::from_mbps(100.0);
        let d = Delay::from_micros(1);
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1");
        b.connect(r0, r1, Capacity::from_mbps(200.0), Delay::from_micros(2));
        let h0 = b.add_host("h0", r0, c, d);
        let h1 = b.add_host("h1", r1, c, d);
        (b.build(), vec![h0, r0, r1, h1])
    }

    fn path_between(net: &Network, nodes: &[NodeId]) -> Path {
        let links: Vec<LinkId> = nodes
            .windows(2)
            .map(|w| net.link_between(w[0], w[1]).unwrap())
            .collect();
        Path::from_links(net, links)
    }

    #[test]
    fn path_endpoints_and_hops() {
        let (net, nodes) = line3();
        let p = path_between(&net, &nodes);
        assert_eq!(p.source(), nodes[0]);
        assert_eq!(p.destination(), nodes[3]);
        assert_eq!(p.hop_count(), 3);
        assert_eq!(p.nodes(), &nodes[..]);
    }

    #[test]
    fn downstream_and_upstream_navigation() {
        let (net, nodes) = line3();
        let p = path_between(&net, &nodes);
        let links = p.links().to_vec();
        assert_eq!(p.next_downstream(links[0]), Some(links[1]));
        assert_eq!(p.next_downstream(links[2]), None);
        assert_eq!(p.next_upstream(links[0]), None);
        assert_eq!(p.next_upstream(links[2]), Some(links[1]));
        assert!(p.contains(links[1]));
        assert_eq!(p.first_link(), links[0]);
        assert_eq!(p.last_link(), links[2]);
    }

    #[test]
    fn delay_and_capacity_aggregation() {
        let (net, nodes) = line3();
        let p = path_between(&net, &nodes);
        assert_eq!(p.total_delay(&net), Delay::from_micros(4));
        assert_eq!(p.min_capacity(&net), Capacity::from_mbps(100.0));
    }

    #[test]
    #[should_panic(expected = "links do not form a chain")]
    fn disconnected_links_rejected() {
        let (net, nodes) = line3();
        // h0->r0 followed by h1->r1 is not a chain.
        let l0 = net.link_between(nodes[0], nodes[1]).unwrap();
        let l1 = net.link_between(nodes[3], nodes[2]).unwrap();
        let _ = Path::from_links(&net, vec![l0, l1]);
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_path_rejected() {
        let (net, _) = line3();
        let _ = Path::from_links(&net, vec![]);
    }
}
