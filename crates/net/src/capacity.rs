//! Link capacity expressed in bits per second.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// Bandwidth of a link (or an effective per-session rate bound) in bits per
/// second.
///
/// The paper configures 100 Mbps host links, 200 Mbps stub–stub links and
/// 500 Mbps transit links; rates computed by the protocols are fractions of
/// these values, so the underlying representation is an `f64`.
///
/// # Example
///
/// ```
/// use bneck_net::Capacity;
/// let c = Capacity::from_mbps(100.0);
/// assert_eq!(c.as_bps(), 100_000_000.0);
/// assert_eq!(c.as_mbps(), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Capacity(f64);

impl Capacity {
    /// A zero capacity.
    pub const ZERO: Capacity = Capacity(0.0);

    /// An effectively unbounded capacity (used for "maximum rate ∞" requests).
    pub const INFINITE: Capacity = Capacity(f64::INFINITY);

    /// Creates a capacity from raw bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is negative or NaN.
    pub fn from_bps(bps: f64) -> Self {
        assert!(!bps.is_nan() && bps >= 0.0, "capacity must be non-negative");
        Capacity(bps)
    }

    /// Creates a capacity from kilobits per second.
    pub fn from_kbps(kbps: f64) -> Self {
        Self::from_bps(kbps * 1e3)
    }

    /// Creates a capacity from megabits per second.
    pub fn from_mbps(mbps: f64) -> Self {
        Self::from_bps(mbps * 1e6)
    }

    /// Creates a capacity from gigabits per second.
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_bps(gbps * 1e9)
    }

    /// Returns the capacity in bits per second.
    pub fn as_bps(self) -> f64 {
        self.0
    }

    /// Returns the capacity in megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Returns `true` if this capacity is unbounded.
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// Returns the smaller of two capacities.
    pub fn min(self, other: Capacity) -> Capacity {
        Capacity(self.0.min(other.0))
    }

    /// Returns the larger of two capacities.
    pub fn max(self, other: Capacity) -> Capacity {
        Capacity(self.0.max(other.0))
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "inf")
        } else if self.0 >= 1e9 {
            write!(f, "{:.3} Gbps", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.3} Mbps", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} Kbps", self.0 / 1e3)
        } else {
            write!(f, "{:.3} bps", self.0)
        }
    }
}

impl Add for Capacity {
    type Output = Capacity;
    fn add(self, rhs: Capacity) -> Capacity {
        Capacity(self.0 + rhs.0)
    }
}

impl Sub for Capacity {
    type Output = Capacity;
    fn sub(self, rhs: Capacity) -> Capacity {
        Capacity((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Capacity {
    type Output = Capacity;
    fn mul(self, rhs: f64) -> Capacity {
        Capacity(self.0 * rhs)
    }
}

impl Div<f64> for Capacity {
    type Output = Capacity;
    fn div(self, rhs: f64) -> Capacity {
        Capacity(self.0 / rhs)
    }
}

impl From<Capacity> for f64 {
    fn from(c: Capacity) -> f64 {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Capacity::from_mbps(200.0).as_bps(), 2e8);
        assert_eq!(Capacity::from_gbps(1.0).as_mbps(), 1000.0);
        assert_eq!(Capacity::from_kbps(1.0).as_bps(), 1000.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Capacity::from_mbps(100.0).to_string(), "100.000 Mbps");
        assert_eq!(Capacity::from_gbps(2.0).to_string(), "2.000 Gbps");
        assert_eq!(Capacity::from_bps(10.0).to_string(), "10.000 bps");
        assert_eq!(Capacity::INFINITE.to_string(), "inf");
    }

    #[test]
    fn arithmetic_is_saturating_on_subtraction() {
        let a = Capacity::from_mbps(10.0);
        let b = Capacity::from_mbps(30.0);
        assert_eq!((a - b).as_bps(), 0.0);
        assert_eq!((b - a).as_mbps(), 20.0);
        assert_eq!((a + b).as_mbps(), 40.0);
        assert_eq!((a * 2.0).as_mbps(), 20.0);
        assert_eq!((b / 3.0).as_mbps(), 10.0);
    }

    #[test]
    fn min_max_and_infinity() {
        let a = Capacity::from_mbps(10.0);
        assert_eq!(a.min(Capacity::INFINITE), a);
        assert_eq!(a.max(Capacity::ZERO), a);
        assert!(Capacity::INFINITE.is_infinite());
        assert!(!a.is_infinite());
    }

    #[test]
    #[should_panic(expected = "capacity must be non-negative")]
    fn negative_capacity_panics() {
        let _ = Capacity::from_bps(-1.0);
    }
}
