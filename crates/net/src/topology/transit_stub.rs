//! gt-itm style transit–stub topology generator.
//!
//! The paper generates its evaluation networks with the gt-itm tool configured
//! with "a typical Internet transit-stub model" (Zegura et al.), in three
//! sizes: Small (110 routers), Medium (1,100 routers) and Big (11,000
//! routers), with up to 600,000 hosts. This module re-implements the
//! transit–stub construction:
//!
//! * a set of *transit domains*, each a connected random graph of transit
//!   routers; transit domains are interconnected;
//! * each transit router sponsors several *stub domains*, each a connected
//!   random graph of stub routers, attached to the sponsoring transit router;
//! * hosts attach to stub routers chosen uniformly at random.
//!
//! Link capacities follow the paper's plan (100 Mbps host access, 200 Mbps
//! stub, 500 Mbps transit) and propagation delays follow the LAN or WAN model.

use crate::capacity::Capacity;
use crate::graph::{Network, NetworkBuilder, NodeId, RouterLevel};
use crate::topology::{DelayModel, LinkPlan};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// The three network sizes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum NetworkSize {
    /// 110 routers (10 transit + 100 stub).
    Small,
    /// 1,100 routers (20 transit + 1,080 stub).
    Medium,
    /// 11,000 routers (110 transit + 10,890 stub).
    Big,
}

impl NetworkSize {
    /// The total number of routers of this size class.
    pub fn router_count(self) -> usize {
        match self {
            NetworkSize::Small => 110,
            NetworkSize::Medium => 1_100,
            NetworkSize::Big => 11_000,
        }
    }

    /// The structural parameters (transit domains, transit routers per domain,
    /// stub domains per transit router, routers per stub domain).
    fn parameters(self) -> (usize, usize, usize, usize) {
        match self {
            NetworkSize::Small => (1, 10, 2, 5),
            NetworkSize::Medium => (2, 10, 6, 9),
            NetworkSize::Big => (10, 11, 9, 11),
        }
    }
}

impl std::fmt::Display for NetworkSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkSize::Small => write!(f, "small"),
            NetworkSize::Medium => write!(f, "medium"),
            NetworkSize::Big => write!(f, "big"),
        }
    }
}

/// Configuration of the transit–stub generator.
///
/// # Example
///
/// ```
/// use bneck_net::prelude::*;
///
/// let config = TransitStubConfig::of_size(NetworkSize::Small)
///     .with_hosts(200)
///     .with_delay_model(DelayModel::Lan)
///     .with_seed(42);
/// let net = TransitStubGenerator::new(config).generate();
/// assert_eq!(net.router_count(), 110);
/// assert_eq!(net.host_count(), 200);
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct TransitStubConfig {
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Routers per transit domain.
    pub transit_routers_per_domain: usize,
    /// Stub domains sponsored by each transit router.
    pub stub_domains_per_transit_router: usize,
    /// Routers per stub domain.
    pub routers_per_stub_domain: usize,
    /// Total number of hosts, attached to uniformly random stub routers.
    pub hosts: usize,
    /// Capacity plan for the three link classes.
    pub link_plan: LinkPlan,
    /// Propagation delay model (LAN or WAN in the paper).
    pub delay_model: DelayModel,
    /// Probability of adding a chord edge (beyond the connectivity ring)
    /// between two routers of the same domain.
    pub intra_domain_chord_probability: f64,
    /// Seed for the deterministic random generator.
    pub seed: u64,
}

impl TransitStubConfig {
    /// Returns a configuration matching one of the paper's size classes, with
    /// no hosts (add them with [`TransitStubConfig::with_hosts`]).
    pub fn of_size(size: NetworkSize) -> Self {
        let (td, trpd, sdtr, rpsd) = size.parameters();
        TransitStubConfig {
            transit_domains: td,
            transit_routers_per_domain: trpd,
            stub_domains_per_transit_router: sdtr,
            routers_per_stub_domain: rpsd,
            hosts: 0,
            link_plan: LinkPlan::default(),
            delay_model: DelayModel::Lan,
            intra_domain_chord_probability: 0.2,
            seed: 1,
        }
    }

    /// Sets the number of hosts.
    pub fn with_hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts;
        self
    }

    /// Sets the propagation delay model.
    pub fn with_delay_model(mut self, model: DelayModel) -> Self {
        self.delay_model = model;
        self
    }

    /// Sets the capacity plan.
    pub fn with_link_plan(mut self, plan: LinkPlan) -> Self {
        self.link_plan = plan;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of routers this configuration will generate.
    pub fn router_count(&self) -> usize {
        let transit = self.transit_domains * self.transit_routers_per_domain;
        transit + transit * self.stub_domains_per_transit_router * self.routers_per_stub_domain
    }
}

/// Deterministic transit–stub topology generator.
#[derive(Debug, Clone)]
pub struct TransitStubGenerator {
    config: TransitStubConfig,
}

impl TransitStubGenerator {
    /// Creates a generator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if any structural parameter is zero.
    pub fn new(config: TransitStubConfig) -> Self {
        assert!(config.transit_domains > 0, "need at least 1 transit domain");
        assert!(
            config.transit_routers_per_domain > 0,
            "need at least 1 transit router per domain"
        );
        assert!(
            config.stub_domains_per_transit_router > 0,
            "need at least 1 stub domain per transit router"
        );
        assert!(
            config.routers_per_stub_domain > 0,
            "need at least 1 router per stub domain"
        );
        TransitStubGenerator { config }
    }

    /// The configuration this generator was created with.
    pub fn config(&self) -> &TransitStubConfig {
        &self.config
    }

    /// Generates the network. Deterministic for a given configuration
    /// (including the seed).
    pub fn generate(&self) -> Network {
        let cfg = &self.config;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut b = NetworkBuilder::new();

        // 1. Transit domains.
        let mut transit_domains: Vec<Vec<NodeId>> = Vec::with_capacity(cfg.transit_domains);
        for t in 0..cfg.transit_domains {
            let routers: Vec<NodeId> = (0..cfg.transit_routers_per_domain)
                .map(|i| b.add_router_at(format!("t{t}.{i}"), RouterLevel::Transit))
                .collect();
            self.connect_domain(&mut b, &routers, cfg.link_plan.transit, &mut rng);
            transit_domains.push(routers);
        }

        // 2. Interconnect transit domains in a ring plus random extra links so
        //    the backbone is connected even with a single pair of domains.
        if cfg.transit_domains > 1 {
            for t in 0..cfg.transit_domains {
                let next = (t + 1) % cfg.transit_domains;
                if t < next || cfg.transit_domains > 2 || t == 0 {
                    let a = *pick(&transit_domains[t], &mut rng);
                    let bnode = *pick(&transit_domains[next], &mut rng);
                    if !b.has_link(a, bnode) {
                        let d = cfg.delay_model.router_delay(&mut rng);
                        b.connect(a, bnode, cfg.link_plan.transit, d);
                    }
                }
            }
        }

        // 3. Stub domains: every transit router sponsors a fixed number.
        let mut stub_routers: Vec<NodeId> = Vec::new();
        for (t, domain) in transit_domains.iter().enumerate() {
            for (i, &transit_router) in domain.iter().enumerate() {
                for s in 0..cfg.stub_domains_per_transit_router {
                    let routers: Vec<NodeId> = (0..cfg.routers_per_stub_domain)
                        .map(|j| b.add_router_at(format!("s{t}.{i}.{s}.{j}"), RouterLevel::Stub))
                        .collect();
                    self.connect_domain(&mut b, &routers, cfg.link_plan.stub, &mut rng);
                    // Attach the stub domain to its sponsoring transit router.
                    let gateway = *pick(&routers, &mut rng);
                    let d = cfg.delay_model.router_delay(&mut rng);
                    b.connect(gateway, transit_router, cfg.link_plan.stub, d);
                    stub_routers.extend(routers);
                }
            }
        }

        // 4. Hosts, attached to uniformly random stub routers.
        for h in 0..cfg.hosts {
            let router = *pick(&stub_routers, &mut rng);
            let d = cfg.delay_model.host_delay(&mut rng);
            b.add_host(format!("h{h}"), router, cfg.link_plan.host_access, d);
        }

        b.build()
    }

    /// Connects the routers of one domain: a ring for guaranteed connectivity
    /// plus random chords with the configured probability.
    fn connect_domain(
        &self,
        b: &mut NetworkBuilder,
        routers: &[NodeId],
        capacity: Capacity,
        rng: &mut SmallRng,
    ) {
        let n = routers.len();
        if n == 1 {
            return;
        }
        for i in 0..n {
            let j = (i + 1) % n;
            if (i < j || n > 2) && !b.has_link(routers[i], routers[j]) {
                let d = self.config.delay_model.router_delay(rng);
                b.connect(routers[i], routers[j], capacity, d);
            }
        }
        for i in 0..n {
            for j in (i + 2)..n {
                if (i, j) == (0, n - 1) {
                    continue; // already part of the ring
                }
                if rng.gen_bool(self.config.intra_domain_chord_probability)
                    && !b.has_link(routers[i], routers[j])
                {
                    let d = self.config.delay_model.router_delay(rng);
                    b.connect(routers[i], routers[j], capacity, d);
                }
            }
        }
    }
}

fn pick<'a, T, R: Rng + ?Sized>(items: &'a [T], rng: &mut R) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// Convenience constructor: generates one of the paper's networks with the
/// given number of hosts, delay model and seed.
///
/// # Example
///
/// ```
/// use bneck_net::prelude::*;
/// let net = bneck_net::topology::transit_stub::paper_network(
///     NetworkSize::Small, 100, DelayModel::Lan, 7);
/// assert_eq!(net.router_count(), 110);
/// ```
pub fn paper_network(size: NetworkSize, hosts: usize, delay: DelayModel, seed: u64) -> Network {
    TransitStubGenerator::new(
        TransitStubConfig::of_size(size)
            .with_hosts(hosts)
            .with_delay_model(delay)
            .with_seed(seed),
    )
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Router;

    #[test]
    fn size_classes_have_paper_router_counts() {
        assert_eq!(NetworkSize::Small.router_count(), 110);
        assert_eq!(NetworkSize::Medium.router_count(), 1_100);
        assert_eq!(NetworkSize::Big.router_count(), 11_000);
        for size in [NetworkSize::Small, NetworkSize::Medium, NetworkSize::Big] {
            assert_eq!(
                TransitStubConfig::of_size(size).router_count(),
                size.router_count(),
                "config router count must match the size class {size}"
            );
        }
    }

    #[test]
    fn small_network_is_generated_with_exact_counts() {
        let net = paper_network(NetworkSize::Small, 50, DelayModel::Lan, 1);
        assert_eq!(net.router_count(), 110);
        assert_eq!(net.host_count(), 50);
        assert_eq!(net.node_count(), 160);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = paper_network(NetworkSize::Small, 20, DelayModel::Wan, 33);
        let b = paper_network(NetworkSize::Small, 20, DelayModel::Wan, 33);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.link_count(), b.link_count());
        for (la, lb) in a.links().zip(b.links()) {
            assert_eq!(la.src(), lb.src());
            assert_eq!(la.dst(), lb.dst());
            assert_eq!(la.capacity(), lb.capacity());
            assert_eq!(la.delay(), lb.delay());
        }
        let c = paper_network(NetworkSize::Small, 20, DelayModel::Wan, 34);
        assert!(
            c.link_count() != a.link_count()
                || c.links()
                    .zip(a.links())
                    .any(|(x, y)| x.delay() != y.delay()),
            "different seeds should give different networks"
        );
    }

    #[test]
    fn every_host_pair_is_connected() {
        let net = paper_network(NetworkSize::Small, 30, DelayModel::Lan, 5);
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&net);
        for i in 0..hosts.len() {
            let j = (i + 7) % hosts.len();
            if i == j {
                continue;
            }
            assert!(
                router.shortest_path(hosts[i], hosts[j]).is_some(),
                "host {i} cannot reach host {j}"
            );
        }
    }

    #[test]
    fn capacity_plan_is_applied_per_link_class() {
        let net = paper_network(NetworkSize::Small, 40, DelayModel::Lan, 9);
        for link in net.links() {
            let src = net.node(link.src()).kind();
            let dst = net.node(link.dst()).kind();
            let mbps = link.capacity().as_mbps();
            use crate::graph::NodeKind::*;
            use crate::graph::RouterLevel::*;
            match (src, dst) {
                (Host, _) | (_, Host) => assert_eq!(mbps, 100.0),
                (Router(Transit), Router(Transit)) => assert_eq!(mbps, 500.0),
                _ => assert_eq!(mbps, 200.0),
            }
        }
    }

    #[test]
    fn wan_delays_are_heterogeneous() {
        let net = paper_network(NetworkSize::Small, 10, DelayModel::Wan, 11);
        let mut distinct = std::collections::HashSet::new();
        for link in net.links() {
            distinct.insert(link.delay());
        }
        assert!(distinct.len() > 3, "WAN delays should vary across links");
    }

    #[test]
    fn medium_network_counts() {
        let net = paper_network(NetworkSize::Medium, 0, DelayModel::Lan, 2);
        assert_eq!(net.router_count(), 1_100);
    }
}
