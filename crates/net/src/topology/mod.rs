//! Topology generators.
//!
//! Two families are provided:
//!
//! * [`transit_stub`] — a gt-itm style hierarchical Internet topology
//!   generator reproducing the paper's Small (110 routers), Medium (1,100
//!   routers) and Big (11,000 routers) networks, with the paper's capacity
//!   plan (100/200/500 Mbps) and LAN/WAN propagation delay models.
//! * [`synthetic`] — small, hand-analyzable topologies (line, star, dumbbell,
//!   parking lot, tree) used by unit tests, examples and micro-benchmarks.

pub mod synthetic;
pub mod transit_stub;

use crate::capacity::Capacity;
use crate::delay::Delay;
use rand::Rng;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Capacity plan for the three classes of links in a transit–stub topology.
///
/// The defaults follow the paper: 100 Mbps between hosts and stub routers,
/// 200 Mbps between stub routers, and 500 Mbps on transit routers' links.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct LinkPlan {
    /// Capacity of host ↔ stub-router links.
    pub host_access: Capacity,
    /// Capacity of stub ↔ stub links (including stub ↔ transit attachment).
    pub stub: Capacity,
    /// Capacity of transit ↔ transit links.
    pub transit: Capacity,
}

impl Default for LinkPlan {
    fn default() -> Self {
        LinkPlan {
            host_access: Capacity::from_mbps(100.0),
            stub: Capacity::from_mbps(200.0),
            transit: Capacity::from_mbps(500.0),
        }
    }
}

/// Propagation delay model used when generating a topology.
///
/// The paper evaluates two scenarios:
/// * **LAN** — every link has a 1 µs propagation delay.
/// * **WAN** — router-to-router links get a delay drawn uniformly at random
///   in 1–10 ms; host access links keep a 1 µs delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum DelayModel {
    /// Fixed 1 µs propagation delay on every link.
    Lan,
    /// Uniform 1–10 ms on router links, 1 µs on host access links.
    Wan,
    /// Fixed delay on every link (for controlled experiments and tests).
    Fixed(Delay),
}

impl DelayModel {
    /// Samples the delay of a host access link.
    pub fn host_delay<R: Rng + ?Sized>(&self, _rng: &mut R) -> Delay {
        match self {
            DelayModel::Lan | DelayModel::Wan => Delay::from_micros(1),
            DelayModel::Fixed(d) => *d,
        }
    }

    /// Samples the delay of a router-to-router link.
    pub fn router_delay<R: Rng + ?Sized>(&self, rng: &mut R) -> Delay {
        match self {
            DelayModel::Lan => Delay::from_micros(1),
            DelayModel::Wan => {
                // Uniform in [1 ms, 10 ms], microsecond granularity.
                let us = rng.gen_range(1_000..=10_000);
                Delay::from_micros(us)
            }
            DelayModel::Fixed(d) => *d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn default_link_plan_matches_paper() {
        let plan = LinkPlan::default();
        assert_eq!(plan.host_access.as_mbps(), 100.0);
        assert_eq!(plan.stub.as_mbps(), 200.0);
        assert_eq!(plan.transit.as_mbps(), 500.0);
    }

    #[test]
    fn lan_delays_are_one_microsecond() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(DelayModel::Lan.host_delay(&mut rng), Delay::from_micros(1));
        assert_eq!(
            DelayModel::Lan.router_delay(&mut rng),
            Delay::from_micros(1)
        );
    }

    #[test]
    fn wan_router_delays_are_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let d = DelayModel::Wan.router_delay(&mut rng);
            assert!(d >= Delay::from_millis(1) && d <= Delay::from_millis(10));
        }
        assert_eq!(DelayModel::Wan.host_delay(&mut rng), Delay::from_micros(1));
    }

    #[test]
    fn fixed_model_is_fixed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let d = Delay::from_micros(42);
        assert_eq!(DelayModel::Fixed(d).host_delay(&mut rng), d);
        assert_eq!(DelayModel::Fixed(d).router_delay(&mut rng), d);
    }
}
