//! Small hand-analyzable topologies used by tests, examples and benchmarks.
//!
//! Each generator returns a [`Network`] whose max-min fair allocation can be
//! computed by hand, which makes them ideal for unit tests of both the
//! centralized oracle and the distributed protocol.

use crate::capacity::Capacity;
use crate::delay::Delay;
use crate::graph::{Network, NetworkBuilder, NodeId};

/// A chain of `routers` routers, each with one host attached:
///
/// ```text
/// h0   h1   h2
///  |    |    |
/// r0 - r1 - r2 - ...
/// ```
///
/// Host links get `host_capacity`, router-to-router links get
/// `backbone_capacity`, and every link has propagation delay `delay`.
///
/// # Panics
///
/// Panics if `routers == 0`.
pub fn line(
    routers: usize,
    host_capacity: Capacity,
    backbone_capacity: Capacity,
    delay: Delay,
) -> Network {
    assert!(routers > 0, "a line needs at least one router");
    let mut b = NetworkBuilder::new();
    let mut prev: Option<NodeId> = None;
    for i in 0..routers {
        let r = b.add_router(format!("r{i}"));
        if let Some(p) = prev {
            b.connect(p, r, backbone_capacity, delay);
        }
        b.add_host(format!("h{i}"), r, host_capacity, delay);
        prev = Some(r);
    }
    b.build()
}

/// A star: one central router with `hosts` hosts attached directly to it.
///
/// # Panics
///
/// Panics if `hosts == 0`.
pub fn star(hosts: usize, host_capacity: Capacity, delay: Delay) -> Network {
    assert!(hosts > 0, "a star needs at least one host");
    let mut b = NetworkBuilder::new();
    let hub = b.add_router("hub");
    for i in 0..hosts {
        b.add_host(format!("h{i}"), hub, host_capacity, delay);
    }
    b.build()
}

/// The classic dumbbell: `pairs` sources on the left, `pairs` sinks on the
/// right, and a single shared bottleneck link between two routers.
///
/// ```text
/// s0 \          / d0
/// s1 - rl ==== rr - d1
/// s2 /  bottleneck \ d2
/// ```
///
/// # Panics
///
/// Panics if `pairs == 0`.
pub fn dumbbell(
    pairs: usize,
    host_capacity: Capacity,
    bottleneck_capacity: Capacity,
    delay: Delay,
) -> Network {
    assert!(pairs > 0, "a dumbbell needs at least one pair");
    let mut b = NetworkBuilder::new();
    let left = b.add_router("left");
    let right = b.add_router("right");
    b.connect(left, right, bottleneck_capacity, delay);
    for i in 0..pairs {
        b.add_host(format!("src{i}"), left, host_capacity, delay);
        b.add_host(format!("dst{i}"), right, host_capacity, delay);
    }
    b.build()
}

/// The "parking lot" topology with `segments` backbone links in a row and one
/// host per router. A long session crossing every segment competes with short
/// sessions that each cross a single segment, which produces a chain of
/// dependent bottlenecks — the classic stress test for max-min algorithms.
///
/// # Panics
///
/// Panics if `segments == 0`.
pub fn parking_lot(
    segments: usize,
    host_capacity: Capacity,
    backbone_capacity: Capacity,
    delay: Delay,
) -> Network {
    line(segments + 1, host_capacity, backbone_capacity, delay)
}

/// A balanced binary tree of routers of the given `depth` (the root is depth
/// 0), with `hosts_per_leaf` hosts attached to each leaf router.
///
/// Internal links get `backbone_capacity`; host links get `host_capacity`.
///
/// # Panics
///
/// Panics if `hosts_per_leaf == 0`.
pub fn binary_tree(
    depth: u32,
    hosts_per_leaf: usize,
    host_capacity: Capacity,
    backbone_capacity: Capacity,
    delay: Delay,
) -> Network {
    assert!(hosts_per_leaf > 0, "need at least one host per leaf");
    let mut b = NetworkBuilder::new();
    let mut level: Vec<NodeId> = vec![b.add_router("t0")];
    let mut counter = 1usize;
    for _ in 0..depth {
        let mut next = Vec::with_capacity(level.len() * 2);
        for &parent in &level {
            for _ in 0..2 {
                let child = b.add_router(format!("t{counter}"));
                counter += 1;
                b.connect(parent, child, backbone_capacity, delay);
                next.push(child);
            }
        }
        level = next;
    }
    let mut host_counter = 0usize;
    for &leaf in &level {
        for _ in 0..hosts_per_leaf {
            b.add_host(format!("h{host_counter}"), leaf, host_capacity, delay);
            host_counter += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Router;

    fn c(m: f64) -> Capacity {
        Capacity::from_mbps(m)
    }
    fn d() -> Delay {
        Delay::from_micros(1)
    }

    #[test]
    fn line_counts() {
        let net = line(4, c(100.0), c(200.0), d());
        assert_eq!(net.router_count(), 4);
        assert_eq!(net.host_count(), 4);
        // 3 router-router connections * 2 + 4 host connections * 2
        assert_eq!(net.link_count(), 14);
    }

    #[test]
    fn star_counts_and_paths() {
        let net = star(5, c(100.0), d());
        assert_eq!(net.router_count(), 1);
        assert_eq!(net.host_count(), 5);
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut r = Router::new(&net);
        let p = r.shortest_path(hosts[0], hosts[4]).unwrap();
        assert_eq!(p.hop_count(), 2);
    }

    #[test]
    fn dumbbell_bottleneck_is_shared() {
        let net = dumbbell(3, c(100.0), c(150.0), d());
        assert_eq!(net.host_count(), 6);
        assert_eq!(net.router_count(), 2);
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut r = Router::new(&net);
        // src_i -> dst_i crosses the single bottleneck; all paths share it.
        let p0 = r.shortest_path(hosts[0], hosts[1]).unwrap();
        let p1 = r.shortest_path(hosts[2], hosts[3]).unwrap();
        let shared: Vec<_> = p0
            .links()
            .iter()
            .filter(|l| p1.links().contains(l))
            .collect();
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn parking_lot_is_a_longer_line() {
        let net = parking_lot(3, c(100.0), c(200.0), d());
        assert_eq!(net.router_count(), 4);
    }

    #[test]
    fn binary_tree_structure() {
        let net = binary_tree(3, 2, c(100.0), c(500.0), d());
        // 1 + 2 + 4 + 8 = 15 routers, 8 leaves * 2 hosts = 16 hosts
        assert_eq!(net.router_count(), 15);
        assert_eq!(net.host_count(), 16);
        // every host can reach every other host
        let hosts: Vec<_> = net.hosts().map(|h| h.id()).collect();
        let mut r = Router::new(&net);
        assert!(r.shortest_path(hosts[0], hosts[15]).is_some());
    }

    #[test]
    #[should_panic(expected = "at least one router")]
    fn empty_line_rejected() {
        let _ = line(0, c(1.0), c(1.0), d());
    }
}
