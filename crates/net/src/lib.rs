//! # bneck-net
//!
//! Network model for the B-Neck reproduction: a directed graph of routers and
//! hosts connected by capacitated links with propagation delays, plus the
//! topology generators used by the paper's evaluation (a gt-itm style
//! transit–stub generator and a family of small synthetic topologies) and
//! shortest-path routing for sessions.
//!
//! The paper models the network as a simple directed graph `G = (V, E)` where
//! connected nodes have links in both directions, hosts hang off a single
//! router through a dedicated link, and every session follows a static
//! shortest path from its source host to its destination host
//! (Section II of the paper).
//!
//! ## Example
//!
//! ```
//! use bneck_net::prelude::*;
//!
//! // Two hosts connected through one router; both host links have 100 Mbps.
//! let mut b = NetworkBuilder::new();
//! let r = b.add_router("r0");
//! let a = b.add_host("a", r, Capacity::from_mbps(100.0), Delay::from_micros(1));
//! let z = b.add_host("z", r, Capacity::from_mbps(100.0), Delay::from_micros(1));
//! let net = b.build();
//! let path = net.shortest_path(a, z).expect("hosts are connected");
//! assert_eq!(path.hop_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod delay;
pub mod graph;
pub mod path;
pub mod routing;
pub mod topology;

pub use capacity::Capacity;
pub use delay::Delay;
pub use graph::{Link, LinkId, Network, NetworkBuilder, Node, NodeId, NodeKind, RouterLevel};
pub use path::Path;
pub use routing::Router;
pub use topology::synthetic;
pub use topology::transit_stub::{NetworkSize, TransitStubConfig, TransitStubGenerator};
pub use topology::{DelayModel, LinkPlan};

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::capacity::Capacity;
    pub use crate::delay::Delay;
    pub use crate::graph::{
        Link, LinkId, Network, NetworkBuilder, Node, NodeId, NodeKind, RouterLevel,
    };
    pub use crate::path::Path;
    pub use crate::routing::Router;
    pub use crate::topology::transit_stub::{NetworkSize, TransitStubConfig, TransitStubGenerator};
    pub use crate::topology::{synthetic, DelayModel, LinkPlan};
}
