//! Property-based tests of the network substrate: generated topologies are
//! well formed and connected, and the shortest-path router returns valid
//! minimum-hop paths.

use bneck_net::prelude::*;
use bneck_net::topology::transit_stub::paper_network;
use proptest::prelude::*;

fn check_network_invariants(network: &Network) {
    // Every link has a reverse companion (the paper's model: connected nodes
    // have links in both directions) and sane attributes.
    for link in network.links() {
        assert!(network.reverse_link(link.id()).is_some());
        assert!(link.capacity().as_bps() > 0.0);
        assert_ne!(link.src(), link.dst());
        assert_eq!(network.link(link.id()).id(), link.id());
    }
    // Hosts have exactly one bidirectional attachment and never forward.
    for host in network.hosts() {
        assert_eq!(network.out_links(host.id()).len(), 1);
        let attachment = network.out_links(host.id())[0];
        assert!(network
            .node(network.link(attachment).dst())
            .kind()
            .is_router());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Small transit-stub networks are structurally sound and fully connected
    /// between hosts, for any seed and either delay model.
    #[test]
    fn transit_stub_networks_are_well_formed(
        seed in 0u64..10_000,
        hosts in 2usize..60,
        wan in proptest::bool::ANY,
    ) {
        let delay = if wan { DelayModel::Wan } else { DelayModel::Lan };
        let network = paper_network(NetworkSize::Small, hosts, delay, seed);
        prop_assert_eq!(network.router_count(), 110);
        prop_assert_eq!(network.host_count(), hosts);
        check_network_invariants(&network);

        // Every sampled pair of hosts is mutually reachable.
        let host_ids: Vec<_> = network.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&network);
        for i in (0..host_ids.len()).step_by(7.max(host_ids.len() / 5)) {
            let a = host_ids[i];
            let b = host_ids[(i + 1) % host_ids.len()];
            if a == b {
                continue;
            }
            let forward = router.shortest_path(a, b);
            let backward = router.shortest_path(b, a);
            prop_assert!(forward.is_some());
            prop_assert!(backward.is_some());
            // Minimum-hop distance is symmetric in a symmetric graph.
            prop_assert_eq!(forward.unwrap().hop_count(), backward.unwrap().hop_count());
        }
    }

    /// Shortest paths are valid chains between the requested endpoints, never
    /// longer than the hop distance reported by a full BFS, and never route
    /// through an intermediate host.
    #[test]
    fn shortest_paths_are_valid_and_minimal(
        seed in 0u64..10_000,
        hosts in 2usize..40,
    ) {
        let network = paper_network(NetworkSize::Small, hosts, DelayModel::Lan, seed);
        let host_ids: Vec<_> = network.hosts().map(|h| h.id()).collect();
        let mut router = Router::new(&network);
        let a = host_ids[seed as usize % host_ids.len()];
        let b = host_ids[(seed as usize / 3 + 1) % host_ids.len()];
        prop_assume!(a != b);
        let distances = router.hop_distances(a);
        let path = router.shortest_path(a, b).expect("hosts are connected");
        prop_assert_eq!(path.source(), a);
        prop_assert_eq!(path.destination(), b);
        prop_assert_eq!(path.hop_count(), distances[b.index()]);
        // The path is a connected chain of existing links.
        for pair in path.links().windows(2) {
            prop_assert_eq!(network.link(pair[0]).dst(), network.link(pair[1]).src());
        }
        for node in &path.nodes()[1..path.nodes().len() - 1] {
            prop_assert!(network.node(*node).kind().is_router());
        }
        // Aggregates are consistent with per-link attributes.
        let total: u64 = path
            .links()
            .iter()
            .map(|l| network.link(*l).delay().as_nanos())
            .sum();
        prop_assert_eq!(path.total_delay(&network).as_nanos(), total);
    }

    /// Synthetic topologies expose the documented shape.
    #[test]
    fn synthetic_generators_have_expected_counts(
        n in 1usize..12,
        host_mbps in 10.0f64..200.0,
        core_mbps in 10.0f64..500.0,
    ) {
        let host = Capacity::from_mbps(host_mbps);
        let core = Capacity::from_mbps(core_mbps);
        let delay = Delay::from_micros(1);

        let line = synthetic::line(n, host, core, delay);
        prop_assert_eq!(line.router_count(), n);
        prop_assert_eq!(line.host_count(), n);

        let star = synthetic::star(n, host, delay);
        prop_assert_eq!(star.router_count(), 1);
        prop_assert_eq!(star.host_count(), n);
        prop_assert_eq!(star.link_count(), 2 * n);

        let dumbbell = synthetic::dumbbell(n, host, core, delay);
        prop_assert_eq!(dumbbell.host_count(), 2 * n);
        check_network_invariants(&dumbbell);
    }
}
