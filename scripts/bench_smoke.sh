#!/usr/bin/env bash
# Smoke-runs every Criterion bench with a tiny wall-clock budget and fails if
# any benchmark panics, records no iterations, or disappears compared to the
# checked-in name manifest (crates/bench/bench-manifest.txt).
#
# Usage: [BNECK_BENCH_BUDGET_MS=25] scripts/bench_smoke.sh
#
# When adding, renaming or removing a benchmark intentionally, regenerate the
# manifest with:
#   BNECK_BENCH_BUDGET_MS=25 cargo bench 2>/dev/null \
#     | grep '^bench ' | awk '{print $2}' | sort > crates/bench/bench-manifest.txt
#
# The convergence_at_scale suite runs whole multi-thousand-session
# simulations per iteration, so even at a tiny budget each of its benchmarks
# costs a couple of wall-clock seconds (one warm-up + one measured run); the
# 50k-session presets live in the `paper_scale` binary (CI job scale-smoke),
# not here.
set -euo pipefail
cd "$(dirname "$0")/.."

budget="${BNECK_BENCH_BUDGET_MS:-25}"
out="$(mktemp)"
trap 'rm -f "$out" "$out.names"' EXIT

# A panicking bench binary makes cargo exit non-zero, which set -o pipefail
# propagates through the tee.
BNECK_BENCH_BUDGET_MS="$budget" cargo bench 2>&1 | tee "$out"

if grep -q 'no iterations recorded' "$out"; then
  echo "bench smoke FAILED: a benchmark recorded no iterations" >&2
  exit 1
fi

grep '^bench ' "$out" | awk '{print $2}' | sort > "$out.names"
if ! diff -u crates/bench/bench-manifest.txt "$out.names"; then
  echo "bench smoke FAILED: benchmark name set diverged from crates/bench/bench-manifest.txt" >&2
  echo "(update the manifest if the change is intentional; see this script's header)" >&2
  exit 1
fi

echo "bench smoke OK: $(wc -l < "$out.names") benchmarks present"
