#!/usr/bin/env bash
# Smoke-runs every Criterion bench with a tiny wall-clock budget and fails if
# any benchmark panics, records no iterations, or drifts from the checked-in
# name manifest (crates/bench/bench-manifest.txt).
#
# Usage: [BNECK_BENCH_BUDGET_MS=25] scripts/bench_smoke.sh
#
# Drift is checked in BOTH directions:
#   * a benchmark name in the manifest that no longer runs fails the diff;
#   * a bench target that exists but contributes nothing fails too — every
#     file in crates/bench/benches/ must be declared as a [[bench]] target in
#     crates/bench/Cargo.toml, and every declared target must emit at least
#     one `bench ` line when run (so a new or renamed target can't silently
#     skip the manifest).
#
# When adding, renaming or removing a benchmark intentionally, regenerate the
# manifest with:
#   BNECK_BENCH_BUDGET_MS=25 cargo bench 2>/dev/null \
#     | grep '^bench ' | awk '{print $2}' | sort > crates/bench/bench-manifest.txt
#
# The convergence_at_scale suite runs whole multi-thousand-session
# simulations per iteration, so even at a tiny budget each of its benchmarks
# costs a couple of wall-clock seconds (one warm-up + one measured run); the
# 50k-session presets live in the `bneck` CLI's scale specs
# (`bneck sweep --sessions 50000`, CI job scale-smoke), not here.
set -euo pipefail
cd "$(dirname "$0")/.."

# The collapsed binary list: every src/bin/*.rs must be a declared [[bin]]
# target (the CLI plus the experiment1/2/3 deprecation wrappers — an
# undeclared file would silently never build).
bins="$(sed -n '/^\[\[bin\]\]/,/^$/{s/^name = "\(.*\)"$/\1/p}' crates/bench/Cargo.toml)"
for f in crates/bench/src/bin/*.rs; do
  base="$(basename "$f" .rs)"
  if ! printf '%s\n' "$bins" | grep -qx "$base"; then
    echo "bench smoke FAILED: $f has no [[bin]] entry in crates/bench/Cargo.toml" >&2
    exit 1
  fi
done

budget="${BNECK_BENCH_BUDGET_MS:-25}"
out="$(mktemp)"
names="$(mktemp)"
trap 'rm -f "$out" "$names"' EXIT

# The declared [[bench]] targets of the bench crate.
targets="$(sed -n '/^\[\[bench\]\]/,/^$/{s/^name = "\(.*\)"$/\1/p}' crates/bench/Cargo.toml)"
if [ -z "$targets" ]; then
  echo "bench smoke FAILED: no [[bench]] targets found in crates/bench/Cargo.toml" >&2
  exit 1
fi

# Every bench source file must be declared (an undeclared file would never
# run, silently escaping both the smoke run and the manifest).
for f in crates/bench/benches/*.rs; do
  base="$(basename "$f" .rs)"
  if ! printf '%s\n' "$targets" | grep -qx "$base"; then
    echo "bench smoke FAILED: $f has no [[bench]] entry in crates/bench/Cargo.toml" >&2
    exit 1
  fi
done

# Run each declared target separately so a target that emits no benchmarks at
# all is caught (one combined run can't attribute names to targets). A
# panicking bench binary makes cargo exit non-zero, which set -e propagates.
: > "$names"
for target in $targets; do
  BNECK_BENCH_BUDGET_MS="$budget" cargo bench --bench "$target" 2>&1 | tee "$out"
  if grep -q 'no iterations recorded' "$out"; then
    echo "bench smoke FAILED: a benchmark in target $target recorded no iterations" >&2
    exit 1
  fi
  if ! grep -q '^bench ' "$out"; then
    echo "bench smoke FAILED: bench target $target emitted no benchmarks" >&2
    echo "(every [[bench]] target must run at least one benchmark and appear in the manifest)" >&2
    exit 1
  fi
  grep '^bench ' "$out" | awk '{print $2}' >> "$names"
done

sort "$names" -o "$names"
if ! diff -u crates/bench/bench-manifest.txt "$names"; then
  echo "bench smoke FAILED: benchmark name set diverged from crates/bench/bench-manifest.txt" >&2
  echo "(update the manifest if the change is intentional; see this script's header)" >&2
  exit 1
fi

echo "bench smoke OK: $(wc -l < "$names") benchmarks across $(printf '%s\n' "$targets" | wc -l) targets"
